"""Crash-durable spill journal: the store's state, one rename ahead of death.

ZeroSum's promise is a usable report *especially* when the run ends
badly — OOM kill, walltime, ``kill -9`` (§3.3).  Everything the report
needs lives in a :class:`~repro.collect.store.SampleStore` in memory,
so this module spools that state to disk as the run progresses:

* a **checkpoint** rewrites the whole journal — one ``meta`` record
  plus one ``snapshot`` of every series, identity map, previous-totals
  and the full :class:`~repro.collect.faults.DegradationLedger` — into
  ``<path>.tmp``, fsyncs, and atomically renames it over the journal,
  so a crash mid-checkpoint leaves the previous journal intact;
* between checkpoints, each committed sampling period appends one
  **period** record carrying only that period's new series rows (full
  replacements for summary-mode stores and wrapped rings) plus the
  small per-period state, written so it survives the process dying;
* **note** records are out-of-band diagnostics (last-gasp signal
  flushes, watchdog stall reports) that touch no store state and are
  fsynced immediately.

The journal handle is unbuffered: every entry point coalesces all of
its framed records into **one** ``write(2)`` (and at most one
``fsync``), so a period's deltas either all reach the kernel or none
do — the sampler never pays more than one syscall per period, and a
crash cannot land between the lines of a single append.

Every record is one newline-terminated frame,
``<magic> <len> <crc32> <body>``, in one of two formats selected per
writer: ``ZSJ1`` carries compact JSON, ``ZSJ2`` (the default) a packed
binary body — a string table plus a tagged value tree whose float64
series rows are struct-packed matrix blocks, several times cheaper to
encode than JSON at scale (speed, not size: packed floats are usually
*larger* than their short JSON reprs).  A torn trailing record — the
half-written frame a ``kill -9`` leaves behind — fails the length/CRC
check and is discarded at recovery, with the tear counted in the
recovered ledger rather than aborting the recovery.  Recovery reads
both formats, even interleaved in one file (an upgraded writer
appending to an old journal).

:func:`recover_journal` replays a journal back into a fresh store and
returns a :class:`RecoveredRun` that rebuilds the full utilization +
degradation report (and exposes the series maps the CSV/archive
exporters expect) — the ``zerosum recover`` post-mortem workflow.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.collect.faults import DegradationEvent, DegradationLedger
from repro.collect.store import SampleStore
from repro.detect.findings import AlertLedger, OnlineFinding
from repro.core.records import SeriesBuffer
from repro.errors import JournalError
from repro.topology.cpuset import CpuSet
from repro.units import USER_HZ

if TYPE_CHECKING:
    from repro.core.reports import UtilizationReport

__all__ = [
    "JournalWriter",
    "RecoveredRun",
    "read_journal",
    "recover_journal",
    "encode_store_snapshot",
    "decode_store_snapshot",
]

_MAGIC = b"ZSJ1"
_MAGIC2 = b"ZSJ2"
FORMAT_VERSION = 1
#: formats a JournalWriter can be asked to emit (recovery reads both)
FORMATS = (1, 2)

#: ledger counter dicts copied verbatim into / out of records
_LEDGER_COUNTERS = (
    "consecutive_failures",
    "failed_periods",
    "retries",
    "dropped_rows",
    "rolled_back_rows",
)

# -- record framing ---------------------------------------------------------
def _frame(payload: dict) -> bytes:
    """One journal line: magic, body length, CRC32, compact JSON."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    return b"%s %d %08x " % (_MAGIC, len(body), zlib.crc32(body)) + body + b"\n"


def _unframe(line: bytes) -> Optional[dict]:
    """Decode one line; ``None`` for anything torn or corrupt."""
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != _MAGIC:
        return None
    try:
        length = int(parts[1])
        crc = int(parts[2], 16)
    except ValueError:
        return None
    body = parts[3]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        return json.loads(body.decode())
    except (ValueError, UnicodeDecodeError):
        return None


# -- ZSJ2: packed binary bodies ---------------------------------------------
#
# A ZSJ2 body is little-endian throughout:
#
#   string table:  uvarint count, then per string: uvarint byte length +
#                  UTF-8 bytes.  Strings are interned in first-use order
#                  while encoding the tree; dict keys and string values
#                  reference the table by index, so repeated keys
#                  ("columns", "appended", per-tid keys...) cost one
#                  varint per use instead of a quoted literal.
#   value tree:    one tagged value (the record dict).
#
# Value tags:
#
#   0  None
#   1  False
#   2  True
#   3  int       zigzag uvarint (arbitrary precision)
#   4  float     IEEE-754 binary64, ``<d``
#   5  str       uvarint string-table index
#   6  list      uvarint count + that many values
#   7  dict      uvarint count + per item: uvarint key index + value
#   8  matrix    uvarint nrows + uvarint ncols + nrows*ncols ``<d``
#
# Tag 8 is the fast path: a rectangular list of all-float rows (a
# series buffer's ``array.tolist()``) packs as one ``struct`` block and
# decodes back to the same list-of-lists JSON would have produced, so
# recovery is bit-identical across formats.

_T_NONE, _T_FALSE, _T_TRUE = 0, 1, 2
_T_INT, _T_FLOAT, _T_STR = 3, 4, 5
_T_LIST, _T_DICT, _T_MATRIX = 6, 7, 8

_PACK_D = struct.Struct("<d").pack


def _pack_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint, appended to ``out``."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _matrix_cols(value: list) -> int:
    """Column count if ``value`` packs as a tag-8 matrix, else 0."""
    ncols = 0
    for row in value:
        if type(row) is not list or not row:
            return 0
        if ncols == 0:
            ncols = len(row)
        elif len(row) != ncols:
            return 0
        for cell in row:
            if type(cell) is not float:
                return 0
    return ncols


def _encode_value(out: bytearray, strings: dict, value) -> None:
    # hot path: dict scalars are encoded inline (no recursive call per
    # leaf), string interning is one dict.setdefault, and one-byte
    # varints skip the loop — the tree walk is pure Python, so every
    # leaf-level call it avoids is throughput
    kind = type(value)
    if kind is dict:
        out.append(_T_DICT)
        count = len(value)
        if count > 0x7F:
            _pack_uvarint(out, count)
        else:
            out.append(count)
        for key, item in value.items():
            index = strings.setdefault(key, len(strings))
            if index > 0x7F:
                _pack_uvarint(out, index)
            else:
                out.append(index)
            ikind = type(item)
            if ikind is float:
                out.append(_T_FLOAT)
                out += _PACK_D(item)
            elif ikind is str:
                out.append(_T_STR)
                index = strings.setdefault(item, len(strings))
                if index > 0x7F:
                    _pack_uvarint(out, index)
                else:
                    out.append(index)
            elif ikind is int:  # bool is not `is int`: falls through
                out.append(_T_INT)
                _pack_uvarint(
                    out, (item << 1) if item >= 0 else ((~item) << 1) | 1
                )
            else:
                _encode_value(out, strings, item)
    elif kind is float:
        out.append(_T_FLOAT)
        out += _PACK_D(value)
    elif kind is str:
        out.append(_T_STR)
        index = strings.setdefault(value, len(strings))
        if index > 0x7F:
            _pack_uvarint(out, index)
        else:
            out.append(index)
    elif kind is np.ndarray:
        # trusted bulk path: a series buffer's float64 row block packs
        # straight from the array's memory, no tolist()/flatten walk
        if value.ndim != 2 or value.dtype != np.float64:
            _encode_value(out, strings, value.tolist())
            return
        out.append(_T_MATRIX)
        _pack_uvarint(out, value.shape[0])
        _pack_uvarint(out, value.shape[1])
        out += value.astype("<f8", copy=False).tobytes()
    elif kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif kind is int:
        out.append(_T_INT)
        n = value
        _pack_uvarint(out, (n << 1) if n >= 0 else ((~n) << 1) | 1)
    elif kind is list or kind is tuple:
        ncols = _matrix_cols(value) if kind is list else 0
        if ncols:
            out.append(_T_MATRIX)
            _pack_uvarint(out, len(value))
            _pack_uvarint(out, ncols)
            flat = [cell for row in value for cell in row]
            out += struct.pack("<%dd" % len(flat), *flat)
        else:
            out.append(_T_LIST)
            _pack_uvarint(out, len(value))
            for item in value:
                _encode_value(out, strings, item)
    elif value is None:
        out.append(_T_NONE)
    elif isinstance(value, bool):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        n = int(value)
        _pack_uvarint(out, (n << 1) if n >= 0 else ((~n) << 1) | 1)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _PACK_D(float(value))
    elif isinstance(value, str):
        out.append(_T_STR)
        _pack_uvarint(out, strings.setdefault(str(value), len(strings)))
    else:
        raise JournalError(
            f"journal payload value of type {kind.__name__} "
            "is not serializable"
        )


def _encode_body(payload: dict) -> bytes:
    """String table + tagged value tree (the ZSJ2 frame body)."""
    strings: dict[str, int] = {}
    tree = bytearray()
    _encode_value(tree, strings, payload)
    body = bytearray()
    _pack_uvarint(body, len(strings))
    for text in strings:  # dicts preserve insertion == index order
        raw = text.encode("utf-8")
        _pack_uvarint(body, len(raw))
        body += raw
    body += tree
    return bytes(body)


def _decode_value(data: bytes, pos: int, strings: list) -> tuple[object, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_MATRIX:
        nrows, pos = _read_uvarint(data, pos)
        ncols, pos = _read_uvarint(data, pos)
        count = nrows * ncols
        flat = struct.unpack_from("<%dd" % count, data, pos)
        pos += 8 * count
        return (
            [list(flat[i: i + ncols]) for i in range(0, count, ncols)],
            pos,
        )
    if tag == _T_DICT:
        count, pos = _read_uvarint(data, pos)
        record = {}
        for _ in range(count):
            index, pos = _read_uvarint(data, pos)
            record[strings[index]], pos = _decode_value(data, pos, strings)
        return record, pos
    if tag == _T_LIST:
        count, pos = _read_uvarint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, strings)
            items.append(item)
        return items, pos
    if tag == _T_FLOAT:
        return struct.unpack_from("<d", data, pos)[0], pos + 8
    if tag == _T_INT:
        raw, pos = _read_uvarint(data, pos)
        return (raw >> 1) ^ -(raw & 1), pos
    if tag == _T_STR:
        index, pos = _read_uvarint(data, pos)
        return strings[index], pos
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    raise JournalError(f"unknown ZSJ2 value tag {tag}")


def _decode_body(body: bytes) -> Optional[dict]:
    """Decode one ZSJ2 body; ``None`` for anything malformed."""
    try:
        count, pos = _read_uvarint(body, 0)
        strings = []
        for _ in range(count):
            length, pos = _read_uvarint(body, pos)
            strings.append(body[pos: pos + length].decode("utf-8"))
            pos += length
        value, pos = _decode_value(body, pos, strings)
    except (IndexError, struct.error, UnicodeDecodeError, JournalError):
        return None
    if pos != len(body) or not isinstance(value, dict):
        return None
    return value


def _frame2(payload: dict) -> bytes:
    """One ZSJ2 journal frame: magic, body length, CRC32, packed body."""
    body = _encode_body(payload)
    return (
        b"%s %d %08x " % (_MAGIC2, len(body), zlib.crc32(body))
        + body
        + b"\n"
    )


# -- state (de)serialization ------------------------------------------------
def _series_state(series: SeriesBuffer, *, binary: bool = False) -> dict:
    # a binary (ZSJ2) writer takes the float64 row block as the ndarray
    # itself — the packer serializes it straight from array memory; the
    # JSON writer needs plain lists
    return {
        "columns": list(series.columns),
        "rows": series.array if binary else series.array.tolist(),
        "appended": series.appended,
    }


def _series_from_state(
    state: dict, max_rows: Optional[int] = None
) -> SeriesBuffer:
    series = SeriesBuffer(tuple(state["columns"]), max_rows=max_rows)
    for row in state["rows"]:
        series.append(row)
    series.appended = int(state.get("appended", len(state["rows"])))
    return series


def _event_state(event: DegradationEvent) -> dict:
    return {
        "tick": event.tick,
        "collector": event.collector,
        "action": event.action,
        "failure_class": event.failure_class,
        "reason": event.reason,
    }


def _event_from_state(state: dict) -> DegradationEvent:
    return DegradationEvent(
        tick=state["tick"],
        collector=state["collector"],
        action=state["action"],
        failure_class=state["failure_class"],
        reason=state["reason"],
    )


def _ledger_state(ledger: DegradationLedger, *, since: int) -> dict:
    """Counters in full (they are small), events from index ``since``.

    The ring holds indexes ``[total_events - len, total_events)``;
    events already evicted from it cannot be re-journaled, matching the
    live ledger's own bounded-memory contract.
    """
    events = list(ledger.events)
    start = ledger.total_events - len(events)
    fresh = events[max(0, since - start):]
    return {
        "total_events": ledger.total_events,
        "max_events": ledger.events.maxlen,
        "counters": {k: getattr(ledger, k) for k in _LEDGER_COUNTERS},
        "disabled": {
            name: _event_state(event) for name, event in ledger.disabled.items()
        },
        "events": [_event_state(event) for event in fresh],
    }


def _apply_ledger(ledger: DegradationLedger, state: dict) -> None:
    for key in _LEDGER_COUNTERS:
        setattr(ledger, key, dict(state["counters"].get(key, {})))
    ledger.disabled = {
        name: _event_from_state(event)
        for name, event in state.get("disabled", {}).items()
    }
    for event in state.get("events", []):
        ledger.events.append(_event_from_state(event))
    ledger.total_events = int(state["total_events"])


def _identity_state(store: SampleStore) -> dict:
    return {
        "names": {str(tid): name for tid, name in store.lwp_names.items()},
        "affinity": {
            str(tid): cpus.to_list()
            for tid, cpus in store.lwp_affinity.items()
        },
        "prev_totals": {
            str(tid): total for tid, total in store.prev_totals.items()
        },
        "prev_tick": store.prev_tick,
        "samples_taken": store.samples_taken,
        "last_thread_count": store.last_thread_count,
    }


def _apply_identity(store: SampleStore, state: dict) -> None:
    store.lwp_names = {int(t): name for t, name in state["names"].items()}
    store.lwp_affinity = {
        int(t): CpuSet.from_list(spec) for t, spec in state["affinity"].items()
    }
    store.prev_totals = {
        int(t): total for t, total in state["prev_totals"].items()
    }
    store.prev_tick = float(state["prev_tick"])
    store.samples_taken = int(state["samples_taken"])
    store.last_thread_count = int(state["last_thread_count"])


def _store_state(store: SampleStore, *, binary: bool) -> dict:
    """Marshal a store's complete state (retention, series, ledgers)."""
    state: dict = {
        "keep_series": store.keep_series,
        "max_rows": store.max_rows,
        "summary_rows": store.summary_rows,
        **_identity_state(store),
        "mem": _series_state(store.mem_series, binary=binary),
        "ledger": _ledger_state(
            store.ledger,
            since=store.ledger.total_events - len(store.ledger.events),
        ),
    }
    if store.alerts is not None:
        # the snapshot must carry the alert ledger: checkpoints
        # compact away the per-finding notes written before them
        state["alerts"] = store.alerts.state()
    for family, mapping in (
        ("lwp", store.lwp_series),
        ("hwt", store.hwt_series),
        ("gpu", store.gpu_series),
    ):
        state[family] = {
            str(key): _series_state(series, binary=binary)
            for key, series in mapping.items()
        }
    return state


def encode_store_snapshot(store: SampleStore) -> bytes:
    """One SampleStore as a compact ZSJ2 binary blob.

    The sharded launcher's checkpoint-restart path reuses the journal's
    wire codec for its per-rank store payloads: the packed matrix
    blocks keep epoch-boundary checkpoints cheap enough to marshal
    over a pipe every K epochs, and round-tripping through the same
    codec as crash recovery means one tested serialization, not two.
    """
    return _encode_body({"store": _store_state(store, binary=True)})


def decode_store_snapshot(blob: bytes) -> SampleStore:
    """Rebuild the SampleStore encoded by :func:`encode_store_snapshot`."""
    record = _decode_body(blob)
    if record is None or "store" not in record:
        raise JournalError("undecodable store snapshot blob")
    return _store_from_snapshot(record)


# -- the writer -------------------------------------------------------------
class JournalWriter:
    """Append-only, checkpoint-compacted spill journal of one store.

    ``checkpoint_every`` periods, the whole journal is rewritten as a
    single snapshot via temp-file + fsync + atomic rename — bounding
    its size and guaranteeing a crash never leaves it half-written.
    Appends between checkpoints are coalesced into one unbuffered
    ``write()`` per period (in the kernel, surviving a ``kill -9``);
    ``fsync=True`` additionally fsyncs every checkpoint and every
    :meth:`sync` (surviving power loss).  All entry points take one
    lock, so a driver's last-gasp :meth:`sync` or :meth:`note` may
    race the sampler thread's :meth:`record_period` safely.

    ``classify`` (optional) stamps each record with the driver's
    thread-kind labels so the recovered report reproduces them.

    ``format`` selects the frame codec: 2 (default) writes packed
    binary ZSJ2 frames, 1 the legacy JSON ZSJ1 frames.  Recovery reads
    both, so a ZSJ2 writer may append to (or checkpoint over) a
    journal begun by an older ZSJ1 writer.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        checkpoint_every: int = 10,
        fsync: bool = True,
        classify: Optional[Callable[[int], str]] = None,
        format: int = 2,
    ):
        if checkpoint_every < 1:
            raise JournalError("checkpoint_every must be >= 1")
        if format not in FORMATS:
            raise JournalError(f"journal format must be one of {FORMATS}")
        self.path = Path(path)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        self.classify = classify
        self.format = format
        self._frame_record = _frame if format == 1 else _frame2
        self._file = None
        self._lock = threading.Lock()
        self._seq = 0
        self._cursors: dict[tuple[str, int], int] = {}
        self._ledger_cursor = 0
        self._meta: dict = {}
        #: lifetime statistics, for heartbeats and tests
        self.periods_recorded = 0
        self.checkpoints_written = 0
        self.appends_written = 0  # coalesced write() calls issued

    # -- lifecycle ------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._file is not None

    def open(self, store: SampleStore, meta: dict) -> None:
        """Write the initial meta + snapshot checkpoint."""
        with self._lock:
            if self._file is not None:
                raise JournalError(f"journal {self.path} already open")
            self._meta = {"version": self.format, **meta}
            self._checkpoint_locked(store)

    def close(self, store: Optional[SampleStore] = None) -> None:
        """Final checkpoint (when given the store) and close; idempotent."""
        with self._lock:
            if self._file is None:
                return
            if store is not None:
                self._checkpoint_locked(store)
            self._sync_locked()
            self._file.close()
            self._file = None

    # -- recording ------------------------------------------------------
    def update_meta(self, fields: dict) -> None:
        """Append a meta amendment (e.g. the monitor tid, known late)."""
        with self._lock:
            self._require_open()
            self._meta.update(fields)
            self._emit(self._frame_record({"kind": "meta", **fields}))

    def record_period(self, store: SampleStore, tick: float) -> None:
        """Journal one committed period; every Nth becomes a checkpoint.

        All of the period's delta records reach the kernel in a single
        ``write()`` — see :meth:`_emit`.
        """
        with self._lock:
            self._require_open()
            self._seq += 1
            self.periods_recorded += 1
            if self._seq % self.checkpoint_every == 0:
                self._checkpoint_locked(store, tick=tick)
                return
            self._emit(self._frame_record(self._period_record(store, tick)))

    def note(self, tick: float, collector: str, reason: str) -> None:
        """Durable out-of-band diagnostic; touches no store state.

        Safe from signal handlers and the watchdog thread: it reads
        nothing that the sampler may be mutating, and it fsyncs so the
        diagnostic survives the death it is usually announcing.
        """
        with self._lock:
            self._require_open()
            self._emit(
                self._frame_record(
                    {
                        "kind": "note",
                        "tick": tick,
                        "collector": collector,
                        "reason": reason,
                    }
                ),
                sync=True,
            )

    def alert(self, finding: OnlineFinding) -> None:
        """Durable alert note: one online finding, fsynced immediately.

        Alerts ride the ``note`` channel (old readers see a plain
        diagnostic note) with the finding's full typed state attached,
        so :func:`recover_journal` rebuilds the alert ledger
        bit-identically: findings raised since the last checkpoint come
        from these notes, earlier ones from the snapshot's serialized
        ledger (checkpoints compact notes away).
        """
        with self._lock:
            self._require_open()
            self._emit(
                self._frame_record(
                    {
                        "kind": "note",
                        "tick": finding.tick,
                        "collector": "OnlineDetect",
                        "reason": finding.render(),
                        "alert": finding.to_state(),
                    }
                ),
                sync=True,
            )

    def sync(self) -> None:
        """Flush + fsync everything appended so far (the last-gasp path)."""
        with self._lock:
            self._require_open()
            self._sync_locked(force=True)

    def checkpoint(self, store: SampleStore, tick: Optional[float] = None) -> None:
        """Force a compacting snapshot checkpoint now."""
        with self._lock:
            self._require_open()
            self._checkpoint_locked(store, tick=tick)

    # -- internals ------------------------------------------------------
    def _require_open(self) -> None:
        if self._file is None:
            raise JournalError(f"journal {self.path} is not open")

    def _emit(self, *frames: bytes, sync: bool = False) -> None:
        """Append framed records as one coalesced ``write()``.

        The journal handle is unbuffered (``buffering=0``), so the
        joined buffer hits the kernel in a single syscall: the append
        is all-or-nothing at line granularity with no userspace buffer
        tail left to tear, and costs at most one ``fsync`` on top.
        """
        self._file.write(b"".join(frames))
        self.appends_written += 1
        if sync:
            os.fsync(self._file.fileno())

    def _sync_locked(self, force: bool = False) -> None:
        if self.fsync or force:
            os.fsync(self._file.fileno())

    def _checkpoint_locked(
        self, store: SampleStore, tick: Optional[float] = None
    ) -> None:
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            # meta + snapshot coalesced: one write, at most one fsync
            handle.write(
                self._frame_record({"kind": "meta", **self._meta})
                + self._frame_record(self._snapshot_record(store, tick))
            )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        if self.fsync:
            dirfd = os.open(self.path.parent, os.O_RDONLY)
            os.fsync(dirfd)
            os.close(dirfd)
        if self._file is not None:
            self._file.close()
        self._file = open(self.path, "ab", buffering=0)
        # the snapshot carries everything: reset every delta cursor
        self._cursors = {
            (family, key): series.appended
            for family, mapping in self._series_maps(store)
            for key, series in mapping.items()
        }
        self._cursors[("mem", 0)] = store.mem_series.appended
        self._ledger_cursor = store.ledger.total_events
        self.checkpoints_written += 1

    @staticmethod
    def _series_maps(store: SampleStore):
        return (
            ("lwp", store.lwp_series),
            ("hwt", store.hwt_series),
            ("gpu", store.gpu_series),
        )

    def _kinds(self, store: SampleStore) -> dict[str, str]:
        if self.classify is None:
            return {}
        return {str(tid): self.classify(tid) for tid in store.lwp_series}

    def _snapshot_record(
        self, store: SampleStore, tick: Optional[float]
    ) -> dict:
        return {
            "kind": "snapshot",
            "seq": self._seq,
            "tick": store.prev_tick if tick is None else tick,
            "kinds": self._kinds(store),
            "store": _store_state(store, binary=self.format == 2),
        }

    def _series_delta(
        self, family: str, key: int, series: SeriesBuffer, keep_series: bool
    ) -> Optional[dict]:
        binary = self.format == 2
        cursor = self._cursors.get((family, key), 0)
        new = series.appended - cursor
        self._cursors[(family, key)] = series.appended
        if not keep_series:
            # summary mode refreshes rows in place without appending, so
            # the delta is the whole (<= summary_rows) series every time
            return {"replace": True, **_series_state(series, binary=binary)}
        if new <= 0:
            return None
        if new > len(series):
            # the ring overwrote rows the cursor never saw: replace
            return {"replace": True, **_series_state(series, binary=binary)}
        rows = series.array[-new:]
        return {
            "columns": list(series.columns),
            "rows": rows if binary else rows.tolist(),
            "appended": series.appended,
        }

    def _period_record(self, store: SampleStore, tick: float) -> dict:
        series: dict = {}
        for family, mapping in self._series_maps(store):
            entries = {}
            for key, buf in mapping.items():
                entry = self._series_delta(family, key, buf, store.keep_series)
                if entry is not None:
                    entries[str(key)] = entry
            if entries:
                series[family] = entries
        mem = self._series_delta("mem", 0, store.mem_series, store.keep_series)
        if mem is not None:
            series["mem"] = mem
        record = {
            "kind": "period",
            "seq": self._seq,
            "tick": tick,
            "series": series,
            "kinds": self._kinds(store),
            **_identity_state(store),
            "ledger": _ledger_state(store.ledger, since=self._ledger_cursor),
        }
        self._ledger_cursor = store.ledger.total_events
        return record


# -- recovery ---------------------------------------------------------------
def _parse_frame(data: bytes, pos: int) -> Optional[tuple[dict, int]]:
    """Decode the frame starting at ``pos``; ``None`` if torn/corrupt.

    Works on byte offsets, not lines: a ZSJ2 body is binary and may
    contain newline bytes, so the file cannot be split on ``\\n``.
    The header (magic, length, CRC) is ASCII either way, and the
    declared length walks the parser past the body to the terminator.
    """
    magic = data[pos: pos + 4]
    if (magic != _MAGIC and magic != _MAGIC2) or data[pos + 4: pos + 5] != b" ":
        return None
    len_end = data.find(b" ", pos + 5)
    if len_end < 0:
        return None
    crc_end = data.find(b" ", len_end + 1)
    if crc_end < 0:
        return None
    try:
        length = int(data[pos + 5: len_end])
        crc = int(data[len_end + 1: crc_end], 16)
    except ValueError:
        return None
    if length < 0:
        return None
    body = data[crc_end + 1: crc_end + 1 + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    end = crc_end + 1 + length
    if data[end: end + 1] not in (b"\n", b""):
        return None  # frame not terminated where its length said
    if magic == _MAGIC:
        try:
            record = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            return None
    else:
        record = _decode_body(body)
    if not isinstance(record, dict):
        return None
    return record, end + 1


def read_journal(path: str | Path) -> tuple[list[dict], int]:
    """All decodable records, plus the count of discarded torn records.

    Decoding stops at the first bad frame: everything after a tear is
    unordered debris by definition (the writer is strictly
    append-then-rename), so it is counted and discarded, never parsed.
    The torn count is the number of frame headers visible in the
    debris (at least one — the tear itself).
    """
    data = Path(path).read_bytes()
    records: list[dict] = []
    pos = 0
    size = len(data)
    while pos < size:
        if data[pos] == 0x0A:  # blank line / frame terminator
            pos += 1
            continue
        parsed = _parse_frame(data, pos)
        if parsed is None:
            rest = data[pos:]
            torn = rest.count(_MAGIC + b" ") + rest.count(_MAGIC2 + b" ")
            return records, max(1, torn)
        record, pos = parsed
        records.append(record)
    return records, 0


def _store_from_snapshot(record: dict) -> SampleStore:
    state = record["store"]
    # reproduce the original retention policy: a ring store must evict
    # recovered delta rows exactly as the live one did, or the report's
    # first/last baselines drift from what the monitor would have built
    keep_series = bool(state.get("keep_series", True))
    max_rows = state.get("max_rows")
    store = SampleStore(
        keep_series=keep_series,
        max_rows=max_rows,
        summary_rows=int(state.get("summary_rows", 1)),
    )
    ring = max_rows if keep_series else None
    _apply_identity(store, state)
    for family, attr in (
        ("lwp", "lwp_series"),
        ("hwt", "hwt_series"),
        ("gpu", "gpu_series"),
    ):
        setattr(
            store,
            attr,
            {
                int(key): _series_from_state(entry, ring)
                for key, entry in state.get(family, {}).items()
            },
        )
    store.mem_series = _series_from_state(state["mem"], ring)
    ledger_state = state["ledger"]
    store.ledger = DegradationLedger(
        max_events=int(ledger_state.get("max_events") or 1024)
    )
    _apply_ledger(store.ledger, ledger_state)
    alerts_state = state.get("alerts")
    if alerts_state is not None:
        store.alerts = AlertLedger.from_state(alerts_state)
    return store


def _apply_series_entry(
    entry: dict,
    existing: Optional[SeriesBuffer],
    max_rows: Optional[int],
) -> SeriesBuffer:
    if entry.get("replace") or existing is None:
        return _series_from_state(entry, max_rows)
    for row in entry["rows"]:
        existing.append(row)
    existing.appended = int(entry["appended"])
    return existing


def _apply_period(store: SampleStore, record: dict) -> None:
    series = record.get("series", {})
    ring = store.max_rows if store.keep_series else None
    for family, attr in (
        ("lwp", "lwp_series"),
        ("hwt", "hwt_series"),
        ("gpu", "gpu_series"),
    ):
        mapping = getattr(store, attr)
        for key, entry in series.get(family, {}).items():
            k = int(key)
            mapping[k] = _apply_series_entry(entry, mapping.get(k), ring)
    if "mem" in series:
        store.mem_series = _apply_series_entry(
            series["mem"], store.mem_series, ring
        )
    _apply_identity(store, record)
    _apply_ledger(store.ledger, record["ledger"])


class RecoveredRun:
    """A ``kill -9``'d run, rebuilt from its journal.

    Exposes the same surface the live monitor offers the report and
    export paths — ``report()``, the series maps, ``classify`` — so
    :func:`repro.live.export.write_live_log` and the archive writer
    work on a recovered run unchanged.
    """

    def __init__(
        self,
        store: SampleStore,
        meta: dict,
        *,
        kinds: Optional[dict[int, str]] = None,
        torn_records: int = 0,
        path: Optional[Path] = None,
    ):
        self.store = store
        self.meta = meta
        self.kinds = kinds or {}
        self.torn_records = torn_records
        self.path = path
        self.pid = int(meta.get("pid", 0))
        self.hostname = str(meta.get("hostname", "?"))
        self.rank: Optional[int] = meta.get("rank")
        self.hz = float(meta.get("hz", USER_HZ))
        self.baseline = str(meta.get("baseline", "first"))
        self.start_tick = float(meta.get("start_tick", 0.0))
        self.monitor_tid: Optional[int] = meta.get("monitor_tid")
        self.cpus_allowed = CpuSet.from_list(str(meta.get("cpus_allowed", "")))

    # -- derived quantities --------------------------------------------
    @property
    def duration_ticks(self) -> float:
        return max(1.0, self.store.prev_tick - self.start_tick)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ticks / self.hz

    def classify(self, tid: int) -> str:
        """Thread kind as stamped by the original driver."""
        if tid in self.kinds:
            return self.kinds[tid]
        if tid == self.pid:
            return "Main"
        if self.monitor_tid is not None and tid == self.monitor_tid:
            return "ZeroSum"
        return "Other"

    # -- the common monitor surface ------------------------------------
    @property
    def lwp_series(self):
        return self.store.lwp_series

    @property
    def lwp_affinity(self):
        return self.store.lwp_affinity

    @property
    def lwp_names(self):
        return self.store.lwp_names

    @property
    def hwt_series(self):
        return self.store.hwt_series

    @property
    def gpu_series(self):
        return self.store.gpu_series

    @property
    def mem_series(self):
        return self.store.mem_series

    @property
    def samples_taken(self) -> int:
        return self.store.samples_taken

    @property
    def alerts(self):
        """The recovered alert ledger (None when no detector ran)."""
        return self.store.alerts

    def observed_tids(self) -> list[int]:
        """Every thread id recovered from the journal, sorted."""
        return self.store.observed_tids()

    # -- the report, rebuilt post mortem -------------------------------
    def report(self) -> "UtilizationReport":
        """The Listing 2 report as of the last journaled period."""
        from repro.collect.report import ReportBuilder

        builder = ReportBuilder(
            self.store,
            baseline=self.baseline,
            start_tick=self.start_tick,
            duration_ticks=self.duration_ticks,
            classify=self.classify,
        )
        return builder.build(
            duration_seconds=self.duration_seconds,
            rank=self.rank,
            pid=self.pid,
            hostname=self.hostname,
            cpus_allowed=self.cpus_allowed,
        )


def recover_journal(path: str | Path) -> RecoveredRun:
    """Replay a (possibly truncated) journal into a recovered run.

    Raises :class:`~repro.errors.JournalError` only when no snapshot
    survives at all; a torn trailing record or a tail of lost periods
    is degradation data, recorded in the recovered ledger.
    """
    path = Path(path)
    records, torn = read_journal(path)
    meta: dict = {}
    kinds: dict[int, str] = {}
    store: Optional[SampleStore] = None
    notes: list[dict] = []
    last_tick = 0.0
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            fields = dict(record)
            fields.pop("kind", None)
            meta.update(fields)
        elif kind == "snapshot":
            store = _store_from_snapshot(record)
            kinds.update(
                (int(t), label) for t, label in record.get("kinds", {}).items()
            )
            last_tick = float(record.get("tick", last_tick))
        elif kind == "period":
            if store is None:
                raise JournalError(
                    f"{path}: period record before any snapshot"
                )
            _apply_period(store, record)
            kinds.update(
                (int(t), label) for t, label in record.get("kinds", {}).items()
            )
            last_tick = float(record.get("tick", last_tick))
        elif kind == "note":
            notes.append(record)
        # unknown kinds: forward compatibility — skip, never fail
    if store is None:
        raise JournalError(
            f"{path}: no usable snapshot record (empty or fully torn journal)"
        )
    # notes are journal-only diagnostics; apply them after the replayed
    # ledger state so a later period's counters cannot erase them.
    # Notes carrying a typed alert payload rebuild the alert ledger
    # instead (they are findings, not degradation): the snapshot holds
    # every finding up to the last checkpoint, these notes the rest,
    # so the recovered alert history is bit-identical to the original.
    for note in notes:
        alert_state = note.get("alert")
        if alert_state is not None:
            if store.alerts is None:
                store.alerts = AlertLedger()
            store.alerts.record(OnlineFinding.from_state(alert_state))
            continue
        store.ledger.record_error(
            str(note.get("collector", "Journal")),
            float(note.get("tick", last_tick)),
            str(note.get("reason", "")),
        )
    if torn:
        store.ledger.record_error(
            "Journal",
            last_tick,
            f"recovery discarded {torn} torn trailing record(s)",
        )
    return RecoveredRun(
        store, meta, kinds=kinds, torn_records=torn, path=path
    )
