"""Trace replay: the third driver over the shared collection pipeline.

A ZeroSum log (§3.6) carries the raw CSV dump of every sample.  This
driver re-ingests that dump into a fresh
:class:`~repro.collect.store.SampleStore` and rebuilds the Listing 2
report with the very same
:class:`~repro.collect.report.ReportBuilder` the simulated and live
monitors use — the offline login-node workflow, and the proof that the
store/report seam is real: a report recomputed from the exported
samples matches the one the original run printed.

Thread kinds and affinities are identity metadata, not samples; the
replay recovers them from the report embedded in the log so the
rebuilt rows carry the same labels.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.collect.report import ReportBuilder
from repro.collect.store import SampleStore
from repro.core.records import GPU_COLUMNS, HWT_COLUMNS, LWP_COLUMNS, MEM_COLUMNS
from repro.core.reports import UtilizationReport
from repro.errors import MonitorError
from repro.topology.cpuset import CpuSet
from repro.units import USER_HZ

__all__ = ["ReplayZeroSum"]

_ATTACH_RE = re.compile(
    r"^ZeroSum(?P<live> \(live\))? attached to PID (?P<pid>\d+) "
    r"on (?P<host>\S+)"
)
_CPUS_RE = re.compile(r"^CPUs allowed: \[(?P<cpus>[^\]]*)\]")
_RANK_RE = re.compile(r"^MPI rank (?P<rank>\d+) of \d+")
_LWP_LINE_RE = re.compile(
    r"^LWP (?P<tid>\d+): (?P<kind>.+?) - stime: .*"
    r"CPUs: \[(?P<cpus>[^\]]*)\]$"
)


class ReplayZeroSum:
    """Re-run the report pipeline from one exported log's text."""

    def __init__(self, log_text: str, *, hz: float = USER_HZ):
        # lazy import: logparse sits above core.monitor in the import
        # graph (via core.heatmap), and core.monitor imports this package
        from repro.analysis.logparse import parse_log

        parsed = parse_log(log_text)
        self.hz = hz
        self.live = False
        self.pid = 0
        self.hostname = "?"
        self.rank: Optional[int] = None
        self.cpus_allowed = CpuSet()
        for line in parsed.header.splitlines():
            if m := _ATTACH_RE.match(line):
                self.live = m.group("live") is not None
                self.pid = int(m.group("pid"))
                self.hostname = m.group("host")
            elif m := _CPUS_RE.match(line):
                self.cpus_allowed = CpuSet.from_list(m.group("cpus"))
            elif m := _RANK_RE.match(line):
                self.rank = int(m.group("rank"))
        self.duration_seconds = parsed.duration_seconds()

        self.store = SampleStore()
        self._kinds: dict[int, str] = {}
        self._degradation_notes: list[str] = []
        self._ingest_samples(parsed)
        self._ingest_identity(parsed.report_text)

    # -- ingestion ------------------------------------------------------
    def _ingest_samples(self, parsed) -> None:
        if parsed.lwp is not None:
            self._check(parsed.lwp.columns, ("tid",) + LWP_COLUMNS, "LWP")
            for tid, rows in parsed.lwp.group_rows("tid").items():
                for row in rows:
                    self.store.add_lwp_row(int(tid), tuple(row[1:]))
        if parsed.hwt is not None:
            self._check(parsed.hwt.columns, ("cpu",) + HWT_COLUMNS, "HWT")
            for cpu, rows in parsed.hwt.group_rows("cpu").items():
                for row in rows:
                    self.store.add_hwt_row(int(cpu), tuple(row[1:]))
        if parsed.gpu is not None:
            self._check(parsed.gpu.columns, ("gpu",) + GPU_COLUMNS, "GPU")
            for gpu, rows in parsed.gpu.group_rows("gpu").items():
                for row in rows:
                    self.store.add_gpu_row(int(gpu), tuple(row[1:]))
        if parsed.memory is not None:
            self._check(parsed.memory.columns, MEM_COLUMNS, "memory")
            for row in parsed.memory.rows:
                self.store.add_mem_row(tuple(row))

    @staticmethod
    def _check(columns, expected, section: str) -> None:
        if tuple(columns) != tuple(expected):
            raise MonitorError(
                f"unexpected {section} CSV columns in log: {columns}"
            )

    def _ingest_identity(self, report_text: str) -> None:
        in_degradation = False
        for line in report_text.splitlines():
            # degradation events are identity metadata too: the rebuilt
            # report must still say why a column of the original is gone
            if line == "Degradation Summary:":
                in_degradation = True
                continue
            if in_degradation:
                if not line.strip():
                    in_degradation = False
                else:
                    self._degradation_notes.append(line)
                continue
            m = _LWP_LINE_RE.match(line)
            if not m:
                continue
            tid = int(m.group("tid"))
            self._kinds[tid] = m.group("kind")
            self.store.lwp_affinity[tid] = CpuSet.from_list(m.group("cpus"))

    # -- the common monitor surface ------------------------------------
    @property
    def lwp_series(self):
        return self.store.lwp_series

    @property
    def lwp_affinity(self):
        return self.store.lwp_affinity

    @property
    def lwp_names(self):
        return self.store.lwp_names

    @property
    def hwt_series(self):
        return self.store.hwt_series

    @property
    def gpu_series(self):
        return self.store.gpu_series

    @property
    def mem_series(self):
        return self.store.mem_series

    def observed_tids(self) -> list[int]:
        """Every thread id recovered from the log, sorted."""
        return self.store.observed_tids()

    def classify(self, tid: int) -> str:
        """Thread kind as recorded in the original report."""
        if tid in self._kinds:
            return self._kinds[tid]
        return "Main" if tid == self.pid else "Other"

    # -- the report, recomputed from raw samples -----------------------
    def report(self) -> UtilizationReport:
        """Rebuild the Listing 2 report from the replayed samples."""
        builder = ReportBuilder(
            self.store,
            baseline="first" if self.live else "zero",
            start_tick=0.0,
            duration_ticks=self.duration_seconds * self.hz,
            classify=self.classify,
        )
        report = builder.build(
            duration_seconds=self.duration_seconds,
            rank=self.rank,
            pid=self.pid,
            hostname=self.hostname,
            cpus_allowed=self.cpus_allowed,
        )
        # the replay store never degrades; carry the original run's notes
        report.degradation_notes = list(self._degradation_notes)
        return report
