"""Fault containment for the sampling path (§3.1's always-on promise).

ZeroSum must survive anything the host does to it: threads dying
mid-sample, ``/proc`` entries vanishing, permissions missing, garbage
text from a half-written file.  Production monitoring stacks treat
such degradation as *data*, not death — this module holds the three
pieces that make the collector pipeline behave that way:

* :func:`classify_failure` — the transient/permanent taxonomy.  A
  vanished path (``ENOENT``/``ESRCH``, or a simulated reader's
  errno-less miss) or an I/O hiccup (``EIO``/``EAGAIN``) is
  *transient*: retrying the period may succeed.  A permission error
  (``EACCES``/``EPERM``) or a parse failure (the file existed but its
  content was not what the parser expects — usually a code bug or
  corrupted source) is *permanent*: retrying cannot help.
* :class:`FaultPolicy` — how the :class:`~repro.collect.engine.
  CollectionEngine` reacts: bounded in-period retries with optional
  backoff for transients, and disabling a collector after N
  consecutive failed periods, mirroring how the paper's ZeroSum
  degrades when a vendor SMI is absent (§3.4).
* :class:`DegradationLedger` — every containment decision, recorded on
  the :class:`~repro.collect.store.SampleStore` with tick and reason,
  surfaced in heartbeats, stream events, and the final report.

:class:`FaultyProc` is the deterministic fault injector used by the
fault-injection test suite: it wraps any
:class:`~repro.collect.reader.ProcReader` and, from a seeded RNG,
makes files vanish, turns reads into permission errors, truncates or
garbles text, and delays reads — the same menagerie a real compute
node produces, on demand and reproducibly.
"""

from __future__ import annotations

import errno as _errno
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ProcFSError, ProcParseError

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "HangDetected",
    "classify_failure",
    "FaultPolicy",
    "DegradationEvent",
    "DegradationLedger",
    "FaultyProc",
]

TRANSIENT = "transient"
PERMANENT = "permanent"


class HangDetected(RuntimeError):
    """A worker stopped heartbeating but its process is still alive.

    Distinct from death (``EOFError``/a reaped exit code): the process
    exists but makes no observable progress — a wedged ``/proc`` read,
    a livelock, a stuck barrier.  Classified *transient* because a
    terminate-and-respawn of the worker routinely clears it, unlike a
    deterministic crash that will reproduce on every replay.
    """

#: OS errors a retry may clear: the path vanished (dead thread, exited
#: process) or the read hit a momentary I/O problem.
_TRANSIENT_ERRNOS = frozenset(
    {_errno.ENOENT, _errno.ESRCH, _errno.EIO, _errno.EAGAIN}
)
#: OS errors no retry can clear within one monitoring session.
_PERMANENT_ERRNOS = frozenset({_errno.EACCES, _errno.EPERM})


def classify_failure(exc: BaseException) -> str:
    """``TRANSIENT`` or ``PERMANENT`` for one collector failure.

    ``ProcFSError`` carries the originating errno when the substrate
    had one; an errno-less ``ProcFSError`` (the simulated reader's
    "no such file") is treated as a vanished path, hence transient.
    A :class:`~repro.errors.ProcParseError` — the file was readable
    but its content was malformed — and anything that is not a
    ``ProcFSError`` at all (``ValueError`` from deeper code, an SMI
    backend error, a plain bug) are permanent: the same input will
    fail the same way.  :class:`HangDetected` — a live-but-silent
    worker — is transient: a respawn routinely clears it.
    """
    if isinstance(exc, ProcParseError):
        return PERMANENT
    if isinstance(exc, HangDetected):
        return TRANSIENT
    if isinstance(exc, ProcFSError):
        if exc.errno in _PERMANENT_ERRNOS:
            return PERMANENT
        return TRANSIENT
    return PERMANENT


def is_missing(exc: BaseException) -> bool:
    """Whether a failure means "the path is gone" (vs. denied/broken).

    Malformed content (:class:`~repro.errors.ProcParseError`) is never
    "missing" — the path was there — no matter what errno says.
    """
    if isinstance(exc, ProcParseError):
        return False
    return isinstance(exc, ProcFSError) and (
        exc.errno is None or exc.errno in (_errno.ENOENT, _errno.ESRCH)
    )


@dataclass
class FaultPolicy:
    """How the engine contains collector failures.

    ``max_retries`` bounds the in-period re-attempts after a transient
    failure; ``disable_after`` consecutive failed *periods* (of either
    class) disable the collector for the rest of the run (0 keeps it
    limping forever).  ``sleep`` is the backoff actuator — ``None``
    (the default) never pauses, which keeps simulated sampling
    deterministic; the live monitor passes ``time.sleep``.
    """

    max_retries: int = 2
    disable_after: int = 3
    backoff_seconds: float = 0.0
    backoff_cap_seconds: float = 0.25
    sleep: Optional[Callable[[float], None]] = None

    def pause(self, attempt: int) -> None:
        """Back off before retry ``attempt`` (bounded exponential)."""
        if self.sleep is None or self.backoff_seconds <= 0:
            return
        self.sleep(
            min(self.backoff_seconds * (2**attempt), self.backoff_cap_seconds)
        )


@dataclass(frozen=True)
class DegradationEvent:
    """One containment decision: what happened to whom, when, and why."""

    tick: float
    collector: str
    action: str  # "retry" | "failure" | "dropped-row" | "disabled" | "error"
    failure_class: str  # TRANSIENT | PERMANENT | ""
    reason: str

    def render(self) -> str:
        """One report line: ``tick 412: GpuCollector disabled: ...``."""
        cls = f" [{self.failure_class}]" if self.failure_class else ""
        return (
            f"tick {self.tick:g}: {self.collector} {self.action}{cls}: "
            f"{self.reason}"
        )


class DegradationLedger:
    """Degradation as data: the per-collector health record of a run.

    Counters are exact for the whole run; the event log is a bounded
    ring (``max_events``) so an always-on monitor cannot leak memory
    through its own failure bookkeeping.
    """

    def __init__(self, max_events: int = 1024):
        self.events: deque[DegradationEvent] = deque(maxlen=max_events)
        self.total_events = 0
        #: consecutive failed periods, reset by any success
        self.consecutive_failures: dict[str, int] = {}
        #: failed (rolled-back) periods per collector, lifetime
        self.failed_periods: dict[str, int] = {}
        #: in-period transient retries per collector
        self.retries: dict[str, int] = {}
        #: single rows dropped (dead-thread race) per collector
        self.dropped_rows: dict[str, int] = {}
        #: rows discarded by period rollbacks per collector
        self.rolled_back_rows: dict[str, int] = {}
        #: checkpoint-restart respawns per worker (sharded execution)
        self.respawns: dict[str, int] = {}
        #: collector name -> the event that disabled it
        self.disabled: dict[str, DegradationEvent] = {}

    # -- recording ------------------------------------------------------
    def _record(
        self,
        tick: float,
        collector: str,
        action: str,
        failure_class: str,
        reason: str,
    ) -> DegradationEvent:
        event = DegradationEvent(
            tick=tick,
            collector=collector,
            action=action,
            failure_class=failure_class,
            reason=reason,
        )
        self.events.append(event)
        self.total_events += 1
        return event

    def record_retry(
        self, collector: str, tick: float, reason: str, failure_class: str
    ) -> None:
        """An in-period retry after a transient failure."""
        self.retries[collector] = self.retries.get(collector, 0) + 1
        self._record(tick, collector, "retry", failure_class, reason)

    def record_failure(
        self,
        collector: str,
        tick: float,
        reason: str,
        failure_class: str,
        *,
        rows_discarded: int = 0,
    ) -> int:
        """A failed (rolled-back) period; returns the consecutive count."""
        count = self.consecutive_failures.get(collector, 0) + 1
        self.consecutive_failures[collector] = count
        self.failed_periods[collector] = (
            self.failed_periods.get(collector, 0) + 1
        )
        if rows_discarded:
            self.rolled_back_rows[collector] = (
                self.rolled_back_rows.get(collector, 0) + rows_discarded
            )
        self._record(tick, collector, "failure", failure_class, reason)
        return count

    def record_success(self, collector: str) -> None:
        """A whole period landed: the consecutive-failure streak ends."""
        self.consecutive_failures.pop(collector, None)

    def record_dropped_row(
        self, collector: str, tick: float, reason: str
    ) -> None:
        """One row lost inside an otherwise whole period."""
        self.dropped_rows[collector] = self.dropped_rows.get(collector, 0) + 1
        self._record(tick, collector, "dropped-row", TRANSIENT, reason)

    def record_disable(self, collector: str, tick: float, reason: str) -> None:
        """The collector is out for the rest of the run."""
        self.disabled[collector] = self._record(
            tick, collector, "disabled", "", reason
        )

    def record_respawn(self, collector: str, tick: float, reason: str) -> None:
        """A lost worker was respawned from its checkpoint (recovered)."""
        self.respawns[collector] = self.respawns.get(collector, 0) + 1
        self._record(tick, collector, "respawned", TRANSIENT, reason)

    def record_straggler(self, collector: str, tick: float, reason: str) -> None:
        """A worker past its adaptive deadline but still heartbeating.

        A diagnostic note, not a failure: the orchestrator keeps
        waiting (the worker is making progress), but the run's ledger
        should show where the wall-clock went.
        """
        self._record(tick, collector, "straggler", TRANSIENT, reason)

    def record_error(self, collector: str, tick: float, reason: str) -> None:
        """A driver-level problem (loop error, stop timeout, ...)."""
        self._record(tick, collector, "error", "", reason)

    # -- queries --------------------------------------------------------
    def is_disabled(self, collector: str) -> bool:
        """Whether the collector has been taken out of rotation."""
        return collector in self.disabled

    @property
    def degraded(self) -> bool:
        """Whether anything at all went wrong this run."""
        return self.total_events > 0

    def degraded_summary(self) -> str:
        """One short clause for heartbeat lines."""
        parts = [
            f"{name} disabled ({event.reason})"
            for name, event in sorted(self.disabled.items())
        ]
        dropped = sum(self.dropped_rows.values())
        if dropped:
            parts.append(f"{dropped} dropped rows")
        failed = sum(self.failed_periods.values())
        if failed:
            parts.append(f"{failed} failed periods")
        return "; ".join(parts) if parts else "ok"

    def summary_lines(self) -> list[str]:
        """The report's Degradation Summary section (empty when clean)."""
        if not self.degraded:
            return []
        lines = []
        for name in sorted(
            set(self.failed_periods) | set(self.dropped_rows) | set(self.disabled)
        ):
            counts = []
            if self.failed_periods.get(name):
                counts.append(f"{self.failed_periods[name]} failed periods")
            if self.rolled_back_rows.get(name):
                counts.append(
                    f"{self.rolled_back_rows[name]} rows rolled back"
                )
            if self.dropped_rows.get(name):
                counts.append(f"{self.dropped_rows[name]} dropped rows")
            if self.retries.get(name):
                counts.append(f"{self.retries[name]} retries")
            if name in self.disabled:
                counts.append("disabled")
            lines.append(f"{name}: " + ", ".join(counts))
        if self.total_events > len(self.events):
            lines.append(
                f"(event log capped: showing last {len(self.events)} of "
                f"{self.total_events} events)"
            )
        lines.extend(event.render() for event in self.events)
        return lines


# ---------------------------------------------------------------------------
#: injectable fault kinds, in draw order
_FAULT_KINDS = ("missing", "eacces", "garbage", "truncated", "slow")

#: text no /proc parser accepts — triggers the permanent/parse path
_GARBAGE = "@!garbage 0xZZ not-a-proc-file\n" * 2


@dataclass(frozen=True)
class _Injection:
    """One injected fault, for assertions and debugging."""

    call: int
    op: str  # "read" | "listdir" | "read_tasks_raw" | "read_cpu_times_raw"
    path: str
    kind: str


class FaultyProc:
    """Deterministic fault-injecting wrapper around any ``ProcReader``.

    Each call draws once from a seeded RNG, so the fault schedule is a
    pure function of ``(seed, call sequence)`` — the same test run
    always sees the same faults.  ``match`` restricts injection to
    paths it accepts (e.g. only one thread's files); every call still
    consumes exactly one draw, so adding or changing the filter never
    shifts the schedule of the remaining calls.

    The snapshot tier (``read_tasks_raw``/``read_cpu_times_raw``) is
    forwarded — with missing/EACCES/slow injection — only when the
    wrapped reader implements it, so collectors' ``getattr`` probing
    sees the same tier either way.
    """

    def __init__(
        self,
        base,
        *,
        seed: int = 0,
        missing_rate: float = 0.0,
        eacces_rate: float = 0.0,
        garbage_rate: float = 0.0,
        truncate_rate: float = 0.0,
        slow_rate: float = 0.0,
        slow_seconds: float = 0.0,
        match: Optional[Callable[[str], bool]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.base = base
        self._rng = random.Random(seed)
        self._rates = (
            missing_rate,
            eacces_rate,
            garbage_rate,
            truncate_rate,
            slow_rate,
        )
        self.slow_seconds = slow_seconds
        self.match = match
        self._sleep = sleep
        self.calls = 0
        self.injected: list[_Injection] = []
        # expose the snapshot tier only when the base reader has it,
        # so getattr-probing collectors pick the same tier either way
        if hasattr(base, "read_tasks_raw"):
            self.read_tasks_raw = self._read_tasks_raw
        if hasattr(base, "read_cpu_times_raw"):
            self.read_cpu_times_raw = self._read_cpu_times_raw

    # -- the draw -------------------------------------------------------
    def _draw(self, op: str, path: str, kinds=_FAULT_KINDS) -> Optional[str]:
        self.calls += 1
        r = self._rng.random()  # exactly one draw per call, always
        if self.match is not None and not self.match(path):
            return None
        edge = 0.0
        for kind, rate in zip(_FAULT_KINDS, self._rates):
            edge += rate
            if r < edge:
                if kind not in kinds:
                    return None
                self.injected.append(
                    _Injection(call=self.calls, op=op, path=path, kind=kind)
                )
                return kind
        return None

    def _raise(self, kind: str, path: str) -> None:
        if kind == "missing":
            raise ProcFSError(
                f"injected fault: no such file: {path}", errno=_errno.ENOENT
            )
        if kind == "eacces":
            raise ProcFSError(
                f"injected fault: permission denied: {path}",
                errno=_errno.EACCES,
            )

    # -- textual tier ---------------------------------------------------
    def read(self, path: str) -> str:
        """Read through the base, possibly injecting one fault."""
        kind = self._draw("read", path)
        if kind in ("missing", "eacces"):
            self._raise(kind, path)
        if kind == "slow" and self._sleep is not None:
            self._sleep(self.slow_seconds)
        text = self.base.read(path)
        if kind == "garbage":
            return _GARBAGE
        if kind == "truncated":
            return text[: max(1, len(text) // 3)]
        return text

    def listdir(self, path: str) -> list[str]:
        """List through the base; only vanish/deny/slow make sense here."""
        kind = self._draw("listdir", path, kinds=("missing", "eacces", "slow"))
        if kind in ("missing", "eacces"):
            self._raise(kind, path)
        if kind == "slow" and self._sleep is not None:
            self._sleep(self.slow_seconds)
        return self.base.listdir(path)

    # -- snapshot tier (bound in __init__ when the base has it) ---------
    def _read_tasks_raw(self, pid):
        kind = self._draw(
            "read_tasks_raw",
            f"/proc/{pid}/task",
            kinds=("missing", "eacces", "slow"),
        )
        if kind in ("missing", "eacces"):
            self._raise(kind, f"/proc/{pid}/task")
        if kind == "slow" and self._sleep is not None:
            self._sleep(self.slow_seconds)
        return self.base.read_tasks_raw(pid)

    def _read_cpu_times_raw(self):
        kind = self._draw(
            "read_cpu_times_raw", "/proc/stat", kinds=("missing", "eacces", "slow")
        )
        if kind in ("missing", "eacces"):
            self._raise(kind, "/proc/stat")
        if kind == "slow" and self._sleep is not None:
            self._sleep(self.slow_seconds)
        return self.base.read_cpu_times_raw()
