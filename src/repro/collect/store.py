"""The ``SampleStore``: one home for everything a monitor observes.

Every driver — simulated, live, or replay — owns exactly one store.
Collectors append rows into it, :class:`~repro.collect.report.ReportBuilder`
summarizes it, and the CSV exporters dump it.  The store also owns the
two retention policies:

* **summary mode** (``keep_series=False``): each series keeps only the
  ``summary_rows`` rows the end-of-run report needs — the latest row
  for zero-baseline (simulated) runs, the first + latest rows for
  first-baseline (live) runs — refreshed in place every sample;
* **ring cap** (``max_rows``): full series become rings of the last N
  rows, bounding memory for long-running live sessions.

It also tracks the per-tid cumulative totals of the previous sample,
which the streaming seam differences into per-interval busy rates.

The store is **transactional per collector**: the engine brackets each
collector's run in :meth:`SampleStore.begin` / :meth:`SampleStore.release`,
and :meth:`SampleStore.rollback` rewinds every row, series, name, and
affinity the failing collector touched — a sampling period is whole
per subsystem or absent, never torn.  The store also carries the
:class:`~repro.collect.faults.DegradationLedger` recording every such
containment decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.collect.faults import DegradationLedger
from repro.core.records import (
    GPU_COLUMNS,
    HWT_COLUMNS,
    LWP_COLUMNS,
    MEM_COLUMNS,
    SeriesBuffer,
)
from repro.errors import MonitorError
from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:
    from repro.core.heartbeat import ThreadSnapshot
    from repro.detect.findings import AlertLedger

__all__ = ["SampleStore"]

_MISSING = object()


class SampleStore:
    """Series buffers, identity maps, and previous-sample totals."""

    def __init__(
        self,
        *,
        keep_series: bool = True,
        max_rows: int | None = None,
        summary_rows: int = 1,
        start_tick: float = 0.0,
    ):
        self.keep_series = keep_series
        self.max_rows = max_rows
        self.summary_rows = max(1, summary_rows)
        self.lwp_series: dict[int, SeriesBuffer] = {}
        self.lwp_affinity: dict[int, CpuSet] = {}
        self.lwp_names: dict[int, str] = {}
        self.hwt_series: dict[int, SeriesBuffer] = {}
        self.gpu_series: dict[int, SeriesBuffer] = {}
        self.mem_series = self.new_series(MEM_COLUMNS)
        self.samples_taken = 0
        self.last_thread_count = 0
        #: the degradation record of this run (see repro.collect.faults)
        self.ledger = DegradationLedger()
        #: the alert record of this run, published by the collection
        #: engine when an online detector is attached (None otherwise);
        #: the store never imports the detect package — it only carries
        #: the ledger for the report builder and the journal snapshot
        self.alerts: "AlertLedger | None" = None
        #: undo journal of the open watermark, None outside a transaction
        self._txn: list[tuple] | None = None
        #: tick of the previous committed sample (starts at the
        #: monitor's attach tick so the first interval is well defined)
        self.prev_tick: float = start_tick
        #: cumulative utime+stime per tid as of the previous sample
        self.prev_totals: dict[int, float] = {}

    # -- series creation and retention ---------------------------------
    def new_series(self, columns: Sequence[str]) -> SeriesBuffer:
        """A buffer honouring this store's retention policy."""
        if self.keep_series:
            return SeriesBuffer(columns, max_rows=self.max_rows)
        return SeriesBuffer(columns, capacity=self.summary_rows)

    def _push(self, series: SeriesBuffer, row: Sequence[float]) -> None:
        replace = not (self.keep_series or len(series) < self.summary_rows)
        if self._txn is not None:
            self._txn.append(("row", series, series.prepare_undo(replace)))
        if replace:
            series.replace_last(row)
        else:
            series.append(row)

    # -- rollback watermark (per-collector transactions) ----------------
    def begin(self) -> None:
        """Open a rollback watermark: journal every mutation after it."""
        if self._txn is not None:
            raise MonitorError("sample transaction already open")
        self._txn = []

    def rollback(self) -> int:
        """Undo everything since :meth:`begin`; returns rows discarded.

        Restores series contents (including ring overwrites and
        summary-mode replaces), removes series created inside the
        watermark, and reverts name/affinity identity records — the
        store is bit-identical to its state at :meth:`begin`.
        """
        if self._txn is None:
            raise MonitorError("no sample transaction open")
        journal, self._txn = self._txn, None
        rows = 0
        for entry in reversed(journal):
            kind = entry[0]
            if kind == "row":
                _, series, token = entry
                series.undo(token)
                rows += 1
            elif kind == "series":
                _, mapping, key = entry
                mapping.pop(key, None)
            else:  # "ident": a name/affinity map entry
                _, mapping, key, old = entry
                if old is _MISSING:
                    mapping.pop(key, None)
                else:
                    mapping[key] = old
        return rows

    def release(self) -> None:
        """Close the watermark, keeping everything written since it."""
        if self._txn is None:
            raise MonitorError("no sample transaction open")
        self._txn = None

    # -- per-subsystem appends -----------------------------------------
    def lwp(self, tid: int) -> SeriesBuffer:
        """The (created-on-demand) series of one thread."""
        series = self.lwp_series.get(tid)
        if series is None:
            if self._txn is not None:
                self._txn.append(("series", self.lwp_series, tid))
            series = self.lwp_series[tid] = self.new_series(LWP_COLUMNS)
        return series

    def _set_identity(self, mapping: dict, key: int, value) -> None:
        if self._txn is not None:
            self._txn.append(
                ("ident", mapping, key, mapping.get(key, _MISSING))
            )
        mapping[key] = value

    def add_lwp_row(
        self,
        tid: int,
        row: Sequence[float],
        *,
        name: str | None = None,
        affinity: CpuSet | None = None,
    ) -> None:
        """Record one thread observation plus its identity facts."""
        self._push(self.lwp(tid), row)
        if name is not None:
            self._set_identity(self.lwp_names, tid, name)
        if affinity is not None:
            # affinity may change after creation: re-record every period
            self._set_identity(self.lwp_affinity, tid, affinity)

    def hwt(self, cpu: int) -> SeriesBuffer:
        """The (created-on-demand) series of one hardware thread."""
        series = self.hwt_series.get(cpu)
        if series is None:
            if self._txn is not None:
                self._txn.append(("series", self.hwt_series, cpu))
            series = self.hwt_series[cpu] = self.new_series(HWT_COLUMNS)
        return series

    def add_hwt_row(self, cpu: int, row: Sequence[float]) -> None:
        """Record one hardware-thread observation."""
        self._push(self.hwt(cpu), row)

    def gpu(self, index: int) -> SeriesBuffer:
        """The (created-on-demand) series of one visible GPU."""
        series = self.gpu_series.get(index)
        if series is None:
            if self._txn is not None:
                self._txn.append(("series", self.gpu_series, index))
            series = self.gpu_series[index] = self.new_series(GPU_COLUMNS)
        return series

    def add_gpu_row(self, index: int, row: Sequence[float]) -> None:
        """Record one GPU sensor sweep."""
        self._push(self.gpu(index), row)

    def add_mem_row(self, row: Sequence[float]) -> None:
        """Record one memory/IO observation."""
        self._push(self.mem_series, row)

    # -- queries --------------------------------------------------------
    def observed_tids(self) -> list[int]:
        """Every thread id ever sampled, sorted."""
        return sorted(self.lwp_series)

    # -- previous-sample tracking --------------------------------------
    def commit(self, tick: float, snapshots: Iterable["ThreadSnapshot"]) -> None:
        """Close one sampling period: remember its tick and totals."""
        self.prev_tick = tick
        for snap in snapshots:
            self.prev_totals[snap.tid] = snap.total_jiffies
