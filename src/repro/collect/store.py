"""The ``SampleStore``: one home for everything a monitor observes.

Every driver — simulated, live, or replay — owns exactly one store.
Collectors append rows into it, :class:`~repro.collect.report.ReportBuilder`
summarizes it, and the CSV exporters dump it.  The store also owns the
two retention policies:

* **summary mode** (``keep_series=False``): each series keeps only the
  ``summary_rows`` rows the end-of-run report needs — the latest row
  for zero-baseline (simulated) runs, the first + latest rows for
  first-baseline (live) runs — refreshed in place every sample;
* **ring cap** (``max_rows``): full series become rings of the last N
  rows, bounding memory for long-running live sessions.

It also tracks the per-tid cumulative totals of the previous sample,
which the streaming seam differences into per-interval busy rates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.core.records import (
    GPU_COLUMNS,
    HWT_COLUMNS,
    LWP_COLUMNS,
    MEM_COLUMNS,
    SeriesBuffer,
)
from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:
    from repro.core.heartbeat import ThreadSnapshot

__all__ = ["SampleStore"]


class SampleStore:
    """Series buffers, identity maps, and previous-sample totals."""

    def __init__(
        self,
        *,
        keep_series: bool = True,
        max_rows: int | None = None,
        summary_rows: int = 1,
        start_tick: float = 0.0,
    ):
        self.keep_series = keep_series
        self.max_rows = max_rows
        self.summary_rows = max(1, summary_rows)
        self.lwp_series: dict[int, SeriesBuffer] = {}
        self.lwp_affinity: dict[int, CpuSet] = {}
        self.lwp_names: dict[int, str] = {}
        self.hwt_series: dict[int, SeriesBuffer] = {}
        self.gpu_series: dict[int, SeriesBuffer] = {}
        self.mem_series = self.new_series(MEM_COLUMNS)
        self.samples_taken = 0
        self.last_thread_count = 0
        #: tick of the previous committed sample (starts at the
        #: monitor's attach tick so the first interval is well defined)
        self.prev_tick: float = start_tick
        #: cumulative utime+stime per tid as of the previous sample
        self.prev_totals: dict[int, float] = {}

    # -- series creation and retention ---------------------------------
    def new_series(self, columns: Sequence[str]) -> SeriesBuffer:
        """A buffer honouring this store's retention policy."""
        if self.keep_series:
            return SeriesBuffer(columns, max_rows=self.max_rows)
        return SeriesBuffer(columns, capacity=self.summary_rows)

    def _push(self, series: SeriesBuffer, row: Sequence[float]) -> None:
        if self.keep_series or len(series) < self.summary_rows:
            series.append(row)
        else:
            series.replace_last(row)

    # -- per-subsystem appends -----------------------------------------
    def lwp(self, tid: int) -> SeriesBuffer:
        """The (created-on-demand) series of one thread."""
        series = self.lwp_series.get(tid)
        if series is None:
            series = self.lwp_series[tid] = self.new_series(LWP_COLUMNS)
        return series

    def add_lwp_row(
        self,
        tid: int,
        row: Sequence[float],
        *,
        name: str | None = None,
        affinity: CpuSet | None = None,
    ) -> None:
        """Record one thread observation plus its identity facts."""
        self._push(self.lwp(tid), row)
        if name is not None:
            self.lwp_names[tid] = name
        if affinity is not None:
            # affinity may change after creation: re-record every period
            self.lwp_affinity[tid] = affinity

    def hwt(self, cpu: int) -> SeriesBuffer:
        """The (created-on-demand) series of one hardware thread."""
        series = self.hwt_series.get(cpu)
        if series is None:
            series = self.hwt_series[cpu] = self.new_series(HWT_COLUMNS)
        return series

    def add_hwt_row(self, cpu: int, row: Sequence[float]) -> None:
        """Record one hardware-thread observation."""
        self._push(self.hwt(cpu), row)

    def gpu(self, index: int) -> SeriesBuffer:
        """The (created-on-demand) series of one visible GPU."""
        series = self.gpu_series.get(index)
        if series is None:
            series = self.gpu_series[index] = self.new_series(GPU_COLUMNS)
        return series

    def add_gpu_row(self, index: int, row: Sequence[float]) -> None:
        """Record one GPU sensor sweep."""
        self._push(self.gpu(index), row)

    def add_mem_row(self, row: Sequence[float]) -> None:
        """Record one memory/IO observation."""
        self._push(self.mem_series, row)

    # -- queries --------------------------------------------------------
    def observed_tids(self) -> list[int]:
        """Every thread id ever sampled, sorted."""
        return sorted(self.lwp_series)

    # -- previous-sample tracking --------------------------------------
    def commit(self, tick: float, snapshots: Iterable["ThreadSnapshot"]) -> None:
        """Close one sampling period: remember its tick and totals."""
        self.prev_tick = tick
        for snap in snapshots:
            self.prev_totals[snap.tid] = snap.total_jiffies
