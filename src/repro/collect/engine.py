"""The sampling engine: reader + collectors + store, no scheduling.

A :class:`CollectionEngine` is the whole §3 observation pipeline with
the driver-specific parts factored out.  The simulated monitor calls
:meth:`sample` from a simulated thread on simulated ticks; the live
monitor calls it from a Python thread on wall-clock jiffies; the
replay driver bypasses it entirely and refills the store from a log.
None of them contain sampling code of their own.

One sampling period is two calls: :meth:`sample` takes the
observation, and :meth:`commit` closes the period once the driver has
consumed any per-interval products (heartbeats, stream events) that
difference the new sample against the previous one.

:meth:`sample` is **transactional per collector**: each collector runs
inside a containment boundary bracketed by the store's rollback
watermark, so a failing collector's partial rows are rewound and a
period is whole-per-subsystem or absent, never torn.  Transient
failures (vanished paths, I/O hiccups) are retried within the period
under the :class:`~repro.collect.faults.FaultPolicy`; a collector that
fails ``disable_after`` consecutive periods is disabled with a reason.
Every decision lands in the store's
:class:`~repro.collect.faults.DegradationLedger`.  The only exception
that escapes :meth:`sample` is
:class:`~repro.errors.ProcessVanishedError` — the monitored process
itself is gone, which only the driver can decide what to do about.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collect.collectors import Collector
from repro.collect.faults import TRANSIENT, FaultPolicy, classify_failure
from repro.collect.store import SampleStore
from repro.core.heartbeat import ThreadSnapshot
from repro.core.stream import SampleEvent, condense_event
from repro.errors import ProcessVanishedError

__all__ = ["CollectionEngine", "collector_name"]


def collector_name(collector: Collector) -> str:
    """The ledger key of a collector (its ``name`` or class name)."""
    return getattr(collector, "name", type(collector).__name__)


class CollectionEngine:
    """Run every collector over one substrate into one store."""

    def __init__(
        self,
        store: SampleStore,
        collectors: Iterable[Collector],
        *,
        policy: Optional[FaultPolicy] = None,
    ):
        self.store = store
        self.collectors: list[Collector] = list(collectors)
        self.policy = policy or FaultPolicy()

    def sample(self, tick: float) -> list[ThreadSnapshot]:
        """One periodic observation across all collectors.

        Never raises for containable collector failures; see the
        module docstring for the containment contract.
        """
        snapshots: list[ThreadSnapshot] = []
        ledger = self.store.ledger
        for collector in self.collectors:
            name = collector_name(collector)
            if ledger.is_disabled(name):
                continue
            snapshots.extend(self._sample_contained(collector, name, tick))
        self.store.samples_taken += 1
        self.store.last_thread_count = len(snapshots)
        return snapshots

    def _sample_contained(
        self, collector: Collector, name: str, tick: float
    ) -> list[ThreadSnapshot]:
        """One collector, one period, inside the containment boundary."""
        policy, store, ledger = self.policy, self.store, self.store.ledger
        for attempt in range(policy.max_retries + 1):
            store.begin()
            try:
                result = collector.collect(tick)
            except ProcessVanishedError:
                # the monitored process itself is gone: nothing to
                # contain, but never leave a torn period behind
                store.rollback()
                raise
            except Exception as exc:
                discarded = store.rollback()
                failure_class = classify_failure(exc)
                reason = f"{type(exc).__name__}: {exc}"
                if failure_class == TRANSIENT and attempt < policy.max_retries:
                    ledger.record_retry(name, tick, reason, failure_class)
                    policy.pause(attempt)
                    continue
                consecutive = ledger.record_failure(
                    name,
                    tick,
                    reason,
                    failure_class,
                    rows_discarded=discarded,
                )
                if policy.disable_after and consecutive >= policy.disable_after:
                    ledger.record_disable(
                        name,
                        tick,
                        f"{consecutive} consecutive failed periods; "
                        f"last: {reason}",
                    )
                return []
            else:
                store.release()
                ledger.record_success(name)
                return result
        return []  # unreachable: the last attempt records and returns

    def make_event(
        self,
        tick: float,
        snapshots: list[ThreadSnapshot],
        *,
        hz: float,
        hostname: str,
        pid: int,
        rank: Optional[int],
        monitor_tid: Optional[int],
        deadlock_suspected: bool,
    ) -> SampleEvent:
        """Condense the sample just taken into one stream event.

        Must run before :meth:`commit` — the busy rate differences the
        new totals against the previous period's.
        """
        return condense_event(
            self.store,
            tick,
            snapshots,
            hz=hz,
            hostname=hostname,
            pid=pid,
            rank=rank,
            monitor_tid=monitor_tid,
            deadlock_suspected=deadlock_suspected,
        )

    def commit(self, tick: float, snapshots: list[ThreadSnapshot]) -> None:
        """Close the period: record its tick and cumulative totals."""
        self.store.commit(tick, snapshots)
