"""The sampling engine: reader + collectors + store, no scheduling.

A :class:`CollectionEngine` is the whole §3 observation pipeline with
the driver-specific parts factored out.  The simulated monitor calls
:meth:`sample` from a simulated thread on simulated ticks; the live
monitor calls it from a Python thread on wall-clock jiffies; the
replay driver bypasses it entirely and refills the store from a log.
None of them contain sampling code of their own.

One sampling period is two calls: :meth:`sample` takes the
observation, and :meth:`commit` closes the period once the driver has
consumed any per-interval products (heartbeats, stream events) that
difference the new sample against the previous one.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.collect.collectors import Collector
from repro.collect.store import SampleStore
from repro.core.heartbeat import ThreadSnapshot
from repro.core.stream import SampleEvent, condense_event

__all__ = ["CollectionEngine"]


class CollectionEngine:
    """Run every collector over one substrate into one store."""

    def __init__(self, store: SampleStore, collectors: Iterable[Collector]):
        self.store = store
        self.collectors: list[Collector] = list(collectors)

    def sample(self, tick: float) -> list[ThreadSnapshot]:
        """One periodic observation across all collectors."""
        snapshots: list[ThreadSnapshot] = []
        for collector in self.collectors:
            snapshots.extend(collector.collect(tick))
        self.store.samples_taken += 1
        self.store.last_thread_count = len(snapshots)
        return snapshots

    def make_event(
        self,
        tick: float,
        snapshots: list[ThreadSnapshot],
        *,
        hz: float,
        hostname: str,
        pid: int,
        rank: Optional[int],
        monitor_tid: Optional[int],
        deadlock_suspected: bool,
    ) -> SampleEvent:
        """Condense the sample just taken into one stream event.

        Must run before :meth:`commit` — the busy rate differences the
        new totals against the previous period's.
        """
        return condense_event(
            self.store,
            tick,
            snapshots,
            hz=hz,
            hostname=hostname,
            pid=pid,
            rank=rank,
            monitor_tid=monitor_tid,
            deadlock_suspected=deadlock_suspected,
        )

    def commit(self, tick: float, snapshots: list[ThreadSnapshot]) -> None:
        """Close the period: record its tick and cumulative totals."""
        self.store.commit(tick, snapshots)
