"""The sampling engine: reader + collectors + store, no scheduling.

A :class:`CollectionEngine` is the whole §3 observation pipeline with
the driver-specific parts factored out.  The simulated monitor calls
:meth:`sample` from a simulated thread on simulated ticks; the live
monitor calls it from a Python thread on wall-clock jiffies; the
replay driver bypasses it entirely and refills the store from a log.
None of them contain sampling code of their own.

One sampling period is two calls: :meth:`sample` takes the
observation, and :meth:`commit` closes the period once the driver has
consumed any per-interval products (heartbeats, stream events) that
difference the new sample against the previous one.

:meth:`sample` is **transactional per collector**: each collector runs
inside a containment boundary bracketed by the store's rollback
watermark, so a failing collector's partial rows are rewound and a
period is whole-per-subsystem or absent, never torn.  Transient
failures (vanished paths, I/O hiccups) are retried within the period
under the :class:`~repro.collect.faults.FaultPolicy`; a collector that
fails ``disable_after`` consecutive periods is disabled with a reason.
Every decision lands in the store's
:class:`~repro.collect.faults.DegradationLedger`.  The only exception
that escapes :meth:`sample` is
:class:`~repro.errors.ProcessVanishedError` — the monitored process
itself is gone, which only the driver can decide what to do about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.collect.collectors import Collector
from repro.collect.faults import TRANSIENT, FaultPolicy, classify_failure
from repro.collect.store import SampleStore
from repro.core.heartbeat import ThreadSnapshot
from repro.core.stream import SampleEvent, condense_event
from repro.errors import ProcessVanishedError

if TYPE_CHECKING:
    from repro.collect.journal import JournalWriter
    from repro.detect.findings import OnlineFinding
    from repro.detect.online import OnlineDetector

__all__ = ["CollectionEngine", "collector_name"]

#: consecutive journal-write failures before journaling is abandoned
_JOURNAL_DISABLE_AFTER = 3


def collector_name(collector: Collector) -> str:
    """The ledger key of a collector (its ``name`` or class name)."""
    return getattr(collector, "name", type(collector).__name__)


class CollectionEngine:
    """Run every collector over one substrate into one store."""

    def __init__(
        self,
        store: SampleStore,
        collectors: Iterable[Collector],
        *,
        policy: Optional[FaultPolicy] = None,
        journal: Optional["JournalWriter"] = None,
        detector: Optional["OnlineDetector"] = None,
    ):
        self.store = store
        self.collectors: list[Collector] = list(collectors)
        self.policy = policy or FaultPolicy()
        #: crash-durability spill journal; None runs memory-only
        self.journal = journal
        self._journal_failures = 0
        #: online detection engine, evaluated once per committed period
        self.detector = detector
        if detector is not None:
            # publish the alert ledger on the store so the report
            # builder (and any store consumer) can read it without the
            # store ever importing the detect package
            store.alerts = detector.alerts

    def sample(self, tick: float) -> list[ThreadSnapshot]:
        """One periodic observation across all collectors.

        Never raises for containable collector failures; see the
        module docstring for the containment contract.
        """
        snapshots: list[ThreadSnapshot] = []
        ledger = self.store.ledger
        for collector in self.collectors:
            name = collector_name(collector)
            if ledger.is_disabled(name):
                continue
            snapshots.extend(self._sample_contained(collector, name, tick))
        self.store.samples_taken += 1
        self.store.last_thread_count = len(snapshots)
        return snapshots

    def _sample_contained(
        self, collector: Collector, name: str, tick: float
    ) -> list[ThreadSnapshot]:
        """One collector, one period, inside the containment boundary."""
        policy, store, ledger = self.policy, self.store, self.store.ledger
        for attempt in range(policy.max_retries + 1):
            store.begin()
            try:
                result = collector.collect(tick)
            except ProcessVanishedError:
                # the monitored process itself is gone: nothing to
                # contain, but never leave a torn period behind
                store.rollback()
                raise
            except Exception as exc:
                discarded = store.rollback()
                failure_class = classify_failure(exc)
                reason = f"{type(exc).__name__}: {exc}"
                if failure_class == TRANSIENT and attempt < policy.max_retries:
                    ledger.record_retry(name, tick, reason, failure_class)
                    policy.pause(attempt)
                    continue
                consecutive = ledger.record_failure(
                    name,
                    tick,
                    reason,
                    failure_class,
                    rows_discarded=discarded,
                )
                if policy.disable_after and consecutive >= policy.disable_after:
                    ledger.record_disable(
                        name,
                        tick,
                        f"{consecutive} consecutive failed periods; "
                        f"last: {reason}",
                    )
                return []
            else:
                store.release()
                ledger.record_success(name)
                return result
        return []  # unreachable: the last attempt records and returns

    def make_event(
        self,
        tick: float,
        snapshots: list[ThreadSnapshot],
        *,
        hz: float,
        hostname: str,
        pid: int,
        rank: Optional[int],
        monitor_tid: Optional[int],
        deadlock_suspected: bool,
    ) -> SampleEvent:
        """Condense the sample just taken into one stream event.

        Must run before :meth:`commit` — the busy rate differences the
        new totals against the previous period's.
        """
        return condense_event(
            self.store,
            tick,
            snapshots,
            hz=hz,
            hostname=hostname,
            pid=pid,
            rank=rank,
            monitor_tid=monitor_tid,
            deadlock_suspected=deadlock_suspected,
        )

    def commit(
        self, tick: float, snapshots: list[ThreadSnapshot]
    ) -> list["OnlineFinding"]:
        """Close the period: record its tick and cumulative totals.

        Once the store commit lands, the online detector (when one is
        attached) evaluates the period and its newly fired findings are
        returned — already recorded in the store's alert ledger, and
        spooled as durable journal notes below.  A failing detector
        must never kill the sampler: its exception is classified and
        contained into the degradation ledger like a collector failure.

        A closed period is durable-eligible: it is spooled to the spill
        journal (when one is attached) *after* the store commit, so the
        journal only ever contains whole periods.  A failing journal
        must never kill the sampler — write errors are contained into
        the ledger, and journaling is abandoned (with a reason) after
        :data:`_JOURNAL_DISABLE_AFTER` consecutive failures.
        """
        self.store.commit(tick, snapshots)
        findings: list["OnlineFinding"] = []
        if self.detector is not None:
            try:
                findings = self.detector.observe(self.store, tick)
            except Exception as exc:
                failure_class = classify_failure(exc)
                self.store.ledger.record_failure(
                    "OnlineDetect",
                    tick,
                    f"{type(exc).__name__}: {exc}",
                    failure_class,
                )
        journal = self.journal
        if journal is None:
            return findings
        try:
            # alert notes first: each finding is fsynced before the
            # period delta, so the alert that predicts a death is
            # durable even if the period write is what dies
            for finding in findings:
                journal.alert(finding)
            journal.record_period(self.store, tick)
        except Exception as exc:
            self._journal_failures += 1
            reason = f"{type(exc).__name__}: {exc}"
            self.store.ledger.record_error(
                "Journal", tick, f"journal write failed: {reason}"
            )
            if self._journal_failures >= _JOURNAL_DISABLE_AFTER:
                self.store.ledger.record_disable(
                    "Journal",
                    tick,
                    f"{self._journal_failures} consecutive journal write "
                    f"failures; last: {reason}",
                )
                self.journal = None
        else:
            self._journal_failures = 0
        return findings

    def close_journal(self, tick: float) -> None:
        """Final checkpoint + close of the spill journal (contained)."""
        journal = self.journal
        if journal is None:
            return
        try:
            journal.close(self.store)
        except Exception as exc:
            self.store.ledger.record_error(
                "Journal",
                tick,
                f"final journal checkpoint failed: "
                f"{type(exc).__name__}: {exc}",
            )
        self.journal = None
