"""The backend-agnostic collection engine (§3.1/§3.5).

One sampling pipeline — ``ProcReader`` → ``Collector`` →
``SampleStore`` → ``ReportBuilder`` — shared by every monitor driver:
the simulated :class:`repro.core.ZeroSum`, the live
:class:`repro.live.LiveZeroSum`, and the offline
:class:`ReplayZeroSum`.  Drivers only schedule samples and manage
lifecycle; everything that reads, parses, stores, or summarizes
observations lives in this package.
"""

from repro.collect.collectors import (
    Collector,
    GpuCollector,
    HwtCollector,
    LwpCollector,
    MemoryCollector,
    read_cpu_times,
    read_meminfo,
    read_task,
)
from repro.collect.engine import CollectionEngine, collector_name
from repro.collect.journal import (
    JournalWriter,
    RecoveredRun,
    read_journal,
    recover_journal,
)
from repro.collect.faults import (
    DegradationEvent,
    DegradationLedger,
    FaultPolicy,
    FaultyProc,
    classify_failure,
)
from repro.collect.reader import (
    ProcReader,
    RealProc,
    SnapshotProcReader,
    TaskCounters,
)
from repro.collect.report import ReportBuilder
from repro.collect.replay import ReplayZeroSum
from repro.collect.store import SampleStore

__all__ = [
    "ProcReader",
    "SnapshotProcReader",
    "TaskCounters",
    "RealProc",
    "Collector",
    "LwpCollector",
    "HwtCollector",
    "MemoryCollector",
    "GpuCollector",
    "read_task",
    "read_cpu_times",
    "read_meminfo",
    "CollectionEngine",
    "collector_name",
    "JournalWriter",
    "RecoveredRun",
    "read_journal",
    "recover_journal",
    "SampleStore",
    "ReportBuilder",
    "ReplayZeroSum",
    "DegradationEvent",
    "DegradationLedger",
    "FaultPolicy",
    "FaultyProc",
    "classify_failure",
]
