"""Live data streaming (§3.3/§6): feed samples to other tools.

The paper closes with "ZeroSum could be utilized to feed
application-oriented information to system-oriented services such as
LDMS" and "interfaces to ZeroSum could make its data accessible to
application performance tools like TAU".  This module is that seam:

* :class:`SampleStream` — a publish/subscribe bus the monitor pushes a
  condensed :class:`SampleEvent` onto after every sampling period;
* :class:`LdmsAggregator` — an LDMS-like in-memory metric service
  subscribed to any number of ranks, answering "what is rank r /
  node n doing *right now*" queries mid-run;
* :class:`CallbackSubscriber` — the TAU/PerfStubs-style adapter: hand
  it any callable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol

if TYPE_CHECKING:
    from repro.collect.store import SampleStore
    from repro.core.heartbeat import ThreadSnapshot

__all__ = [
    "SampleEvent",
    "StreamSubscriber",
    "SampleStream",
    "CallbackSubscriber",
    "LdmsAggregator",
    "condense_event",
]


@dataclass(frozen=True)
class SampleEvent:
    """One period's condensed observation of one process."""

    tick: int
    seconds: float
    hostname: str
    pid: int
    rank: Optional[int]
    threads: int
    runnable_threads: int
    busy_pct: float  # mean user+system across app threads, last interval
    rss_kib: float
    mem_available_kib: float
    gpu_busy_pct: float  # -1 when no GPU visible
    deadlock_suspected: bool
    #: degradation-ledger state at sample time: rows lost so far and
    #: which collectors have been disabled (with reasons in the ledger)
    dropped_rows: int = 0
    disabled_collectors: tuple[str, ...] = ()


def condense_event(
    store: "SampleStore",
    tick: float,
    snapshots: "list[ThreadSnapshot]",
    *,
    hz: float,
    hostname: str,
    pid: int,
    rank: Optional[int],
    monitor_tid: Optional[int],
    deadlock_suspected: bool,
) -> SampleEvent:
    """Condense one period's store state into a :class:`SampleEvent`.

    The busy rate differences the fresh snapshots against the store's
    previous-sample totals, so this must run before the period is
    committed.  The monitor's own thread is excluded from the busy
    average, as in the paper's overhead accounting.
    """
    interval = max(1, tick - store.prev_tick)
    app = [s for s in snapshots if s.tid != monitor_tid]
    deltas = [s.total_jiffies - store.prev_totals.get(s.tid, 0.0) for s in app]
    busy_threads = [d for d in deltas if d > 0] or deltas
    busy_pct = (
        100.0 * sum(busy_threads) / (interval * len(busy_threads))
        if busy_threads
        else 0.0
    )
    gpu_busy = -1.0
    if store.gpu_series:
        vals = [
            float(series.column("busy_percent")[-1])
            for series in store.gpu_series.values()
            if len(series)
        ]
        if vals:
            gpu_busy = sum(vals) / len(vals)
    rss = mem_avail = 0.0
    if len(store.mem_series):
        rss = store.mem_series.last("rss_kib")
        mem_avail = store.mem_series.last("mem_available_kib")
    ledger = store.ledger
    return SampleEvent(
        tick=tick,
        seconds=tick / hz,
        hostname=hostname,
        pid=pid,
        rank=rank,
        threads=len(snapshots),
        runnable_threads=sum(1 for s in snapshots if s.state == "R"),
        busy_pct=busy_pct,
        rss_kib=rss,
        mem_available_kib=mem_avail,
        gpu_busy_pct=gpu_busy,
        deadlock_suspected=deadlock_suspected,
        dropped_rows=sum(ledger.dropped_rows.values()),
        disabled_collectors=tuple(sorted(ledger.disabled)),
    )


class StreamSubscriber(Protocol):
    """Anything that consumes sample events."""

    def on_sample(self, event: SampleEvent) -> None: ...


class SampleStream:
    """A tiny synchronous publish/subscribe bus."""

    def __init__(self) -> None:
        self._subscribers: list[StreamSubscriber] = []
        self.published = 0

    def subscribe(self, subscriber: StreamSubscriber) -> None:
        """Register a consumer for all future events."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: StreamSubscriber) -> None:
        """Remove a consumer; unknown subscribers are ignored."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def publish(self, event: SampleEvent) -> None:
        """Deliver one event synchronously to every subscriber."""
        self.published += 1
        for subscriber in list(self._subscribers):
            subscriber.on_sample(event)


class CallbackSubscriber:
    """Adapter: wrap a plain callable as a subscriber."""

    def __init__(self, fn: Callable[[SampleEvent], None]):
        self._fn = fn

    def on_sample(self, event: SampleEvent) -> None:
        """Subscriber entry point: fold one event into the rolling state."""
        self._fn(event)


@dataclass
class _RankState:
    last: Optional[SampleEvent] = None
    events: int = 0
    peak_rss_kib: float = 0.0
    busy_sum: float = 0.0


class LdmsAggregator:
    """An in-memory metric service collecting the whole job's stream.

    Mimics how an LDMS daemon would hold the latest sample per
    producer and expose simple aggregate queries.
    """

    def __init__(self) -> None:
        self._ranks: dict[int, _RankState] = {}
        self.events = 0

    # -- subscriber interface -------------------------------------------
    def on_sample(self, event: SampleEvent) -> None:
        """Subscriber entry point: fold one event into rolling state."""
        self.events += 1
        key = event.rank if event.rank is not None else -event.pid
        state = self._ranks.setdefault(key, _RankState())
        state.last = event
        state.events += 1
        state.peak_rss_kib = max(state.peak_rss_kib, event.rss_kib)
        state.busy_sum += event.busy_pct

    # -- queries ------------------------------------------------------------
    def ranks(self) -> list[int]:
        """Ranks that have reported at least once."""
        return sorted(self._ranks)

    def latest(self, rank: int) -> Optional[SampleEvent]:
        """Most recent event from a rank, or None if never seen."""
        state = self._ranks.get(rank)
        return state.last if state else None

    def mean_busy(self, rank: int) -> float:
        """Mean busy% across all of a rank's events (0 if unseen)."""
        state = self._ranks.get(rank)
        if not state or state.events == 0:
            return 0.0
        return state.busy_sum / state.events

    def peak_rss_kib(self, rank: int) -> float:
        """Largest RSS the rank ever reported."""
        state = self._ranks.get(rank)
        return state.peak_rss_kib if state else 0.0

    def job_busy_pct(self) -> float:
        """Mean of every rank's most recent busy%."""
        lasts = [s.last.busy_pct for s in self._ranks.values() if s.last]
        return sum(lasts) / len(lasts) if lasts else 0.0

    def stalled_ranks(self) -> list[int]:
        """Ranks whose latest event carries a deadlock suspicion."""
        return [
            rank
            for rank, state in sorted(self._ranks.items())
            if state.last is not None and state.last.deadlock_suspected
        ]
