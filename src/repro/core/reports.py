"""End-of-execution utilization report (§3.4, Listing 2).

Rank 0 writes this summary to stdout; every rank writes the same to its
log file.  The layout reproduces the paper's Listing 2: duration,
process summary, the LWP table, the HWT table, and per-GPU
min/avg/max sensor statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.topology.cpuset import CpuSet

if TYPE_CHECKING:
    from repro.core.monitor import ZeroSum

__all__ = ["LwpRow", "HwtRow", "GpuStat", "UtilizationReport", "build_report", "format_cpus"]


def format_cpus(cpuset: CpuSet, expand_limit: int = 16) -> str:
    """``[1,2,3]`` for short sets, range syntax for long ones."""
    if len(cpuset) <= expand_limit:
        return "[" + ",".join(str(c) for c in cpuset) + "]"
    return "[" + cpuset.to_list() + "]"


@dataclass(frozen=True)
class LwpRow:
    """One line of the LWP (thread) summary table."""

    tid: int
    kind: str
    stime_pct: float
    utime_pct: float
    nv_ctx: int
    ctx: int
    cpus: CpuSet

    def render(self) -> str:
        """The Listing 2 LWP table line."""
        return (
            f"LWP {self.tid}: {self.kind} - "
            f"stime: {self.stime_pct:.2f}, utime: {self.utime_pct:.2f}, "
            f"nv_ctx: {self.nv_ctx}, ctx: {self.ctx}, "
            f"CPUs: {format_cpus(self.cpus)}"
        )


@dataclass(frozen=True)
class HwtRow:
    """One line of the hardware (HWT) summary table."""

    cpu: int
    idle_pct: float
    system_pct: float
    user_pct: float

    def render(self) -> str:
        """The Listing 2 hardware table line."""
        return (
            f"CPU {self.cpu:03d} - idle: {self.idle_pct:.2f}, "
            f"system: {self.system_pct:.2f}, user: {self.user_pct:.2f}"
        )


@dataclass(frozen=True)
class GpuStat:
    """min/avg/max of one metric on one device."""

    label: str
    minimum: float
    average: float
    maximum: float

    def render(self) -> str:
        """The Listing 2 GPU metric line (min avg max)."""
        return (
            f"    {self.label}: {self.minimum:f}  {self.average:f}  "
            f"{self.maximum:f}"
        )


@dataclass
class UtilizationReport:
    """Structured report; ``render()`` emits the Listing 2 text."""

    duration_seconds: float
    rank: Optional[int]
    pid: int
    hostname: str
    cpus_allowed: CpuSet
    lwp_rows: list[LwpRow] = field(default_factory=list)
    hwt_rows: list[HwtRow] = field(default_factory=list)
    gpu_stats: dict[int, list[GpuStat]] = field(default_factory=dict)
    deadlock_note: str = ""
    #: degradation ledger lines — why a column is missing ("GpuCollector
    #: disabled at tick 412: permission denied"); empty for a clean run
    degradation_notes: list[str] = field(default_factory=list)
    #: online-detector findings rendered for the report ("[CRITICAL]
    #: t=900 mem-leak-oom (mem): ..."); empty when no detector ran
    alert_notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """The complete Listing 2 text report."""
        lines = [f"Duration of execution: {self.duration_seconds:.3f} s", ""]
        lines.append("Process Summary:")
        rank_part = f"MPI {self.rank:03d} - " if self.rank is not None else ""
        lines.append(
            f"{rank_part}PID {self.pid} - Node {self.hostname} - "
            f"CPUs allowed: {format_cpus(self.cpus_allowed)}"
        )
        lines += ["", "LWP (thread) Summary:"]
        for row in self.lwp_rows:
            lines.append(row.render())
        if self.hwt_rows:
            lines += ["", "Hardware Summary:"]
            for hrow in self.hwt_rows:
                lines.append(hrow.render())
        for visible in sorted(self.gpu_stats):
            lines += ["", f"GPU {visible} - (metric:  min  avg  max)"]
            for stat in self.gpu_stats[visible]:
                lines.append(stat.render())
        if self.alert_notes:
            lines += ["", "Alerts:"]
            lines.extend(self.alert_notes)
        if self.degradation_notes:
            lines += ["", "Degradation Summary:"]
            lines.extend(self.degradation_notes)
        if self.deadlock_note:
            lines += ["", f"*** {self.deadlock_note} ***"]
        return "\n".join(lines) + "\n"

    # -- structured accessors used by tests and analysis ----------------
    def lwp_by_kind(self, kind: str) -> list[LwpRow]:
        """LWP rows whose kind label contains ``kind``."""
        return [r for r in self.lwp_rows if kind in r.kind]

    def total_nv_ctx(self) -> int:
        """Sum of non-voluntary context switches over all rows."""
        return sum(r.nv_ctx for r in self.lwp_rows)

    def idle_cpus(self, threshold_pct: float = 95.0) -> list[int]:
        """Allocated CPUs idling above the threshold."""
        return [r.cpu for r in self.hwt_rows if r.idle_pct >= threshold_pct]


def build_report(monitor: "ZeroSum") -> UtilizationReport:
    """Assemble the report from a (finalized) monitor's samples.

    Thin shim over :class:`repro.collect.report.ReportBuilder` with the
    simulated substrate's zero baseline: counters started at zero when
    the process did, and each thread is normalized by its own
    observation window so a thread that exits between samples keeps the
    utilization it showed while observable.
    """
    # local import: repro.collect imports this module for the row types
    from repro.collect.report import ReportBuilder

    builder = ReportBuilder(
        monitor.store,
        baseline="zero",
        start_tick=monitor.start_tick,
        duration_ticks=monitor.duration_ticks,
        classify=monitor.classify,
    )
    return builder.build(
        duration_seconds=monitor.duration_seconds,
        rank=monitor.process.rank,
        pid=monitor.process.pid,
        hostname=monitor.process.node.hostname,
        cpus_allowed=monitor.initial.cpus_allowed,
        deadlock_note=(
            monitor.progress.describe() if monitor.deadlock_suspected() else ""
        ),
    )
