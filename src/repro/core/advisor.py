"""Configuration advice: from findings to a corrected launch line.

The paper frames its whole motivation as *configuration optimization*:
"low hanging fruit that can be automated, but to our knowledge has not
yet [been]" (§1), and §3.2 sketches evaluating a configuration against
a known-good one.  This module automates the paper's own §4 narrative:
given the launch options and the monitor's findings, it proposes the
concrete fixes — ``-c N``, ``OMP_PROC_BIND=spread OMP_PLACES=cores``,
``--gpu-bind=closest`` — and synthesizes the corrected ``srun`` line.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.contention import ContentionReport, analyze
from repro.core.monitor import ZeroSum
from repro.core.reports import UtilizationReport, build_report
from repro.launch.options import SrunOptions
from repro.topology.objects import Machine

__all__ = ["Suggestion", "Advice", "advise"]


@dataclass(frozen=True)
class Suggestion:
    """One actionable change to the launch configuration."""

    code: str
    message: str
    #: e.g. ``{"cpus_per_task": 7}`` or env additions
    option_changes: tuple[tuple[str, object], ...] = ()
    env_changes: tuple[tuple[str, str], ...] = ()

    def render(self) -> str:
        """Bullet-point form."""
        return f"- {self.message}"


@dataclass
class Advice:
    """All suggestions plus the synthesized corrected command line."""

    original: SrunOptions
    suggestions: list[Suggestion] = field(default_factory=list)
    suggested: Optional[SrunOptions] = None

    @property
    def is_clean(self) -> bool:
        return not self.suggestions

    def by_code(self, code: str) -> list[Suggestion]:
        """Suggestions of one kind."""
        return [s for s in self.suggestions if s.code == code]

    def command_line(self) -> str:
        """Render the suggested launch as one srun command line."""
        opts = self.suggested or self.original
        parts = []
        for key, value in sorted(opts.env.items()):
            parts.append(f"{key}={value}")
        parts.append("srun")
        parts.append(f"-n{opts.ntasks}")
        if opts.cpus_per_task > 1:
            parts.append(f"-c{opts.cpus_per_task}")
        if opts.gpus_per_task:
            parts.append(f"--gpus-per-task={opts.gpus_per_task}")
        if opts.gpu_bind != "none":
            parts.append(f"--gpu-bind={opts.gpu_bind}")
        if opts.threads_per_core != 1:
            parts.append(f"--threads-per-core={opts.threads_per_core}")
        parts.append(opts.command)
        return " ".join(parts)

    def render(self) -> str:
        """Human-readable advice block with the suggested launch line."""
        if self.is_clean:
            return "Configuration advice: launch configuration looks good.\n"
        lines = ["Configuration advice:"]
        lines += [s.render() for s in self.suggestions]
        lines.append("")
        lines.append("suggested launch:")
        lines.append(f"  {self.command_line()}")
        return "\n".join(lines) + "\n"


def _busy_threads_per_rank(report: UtilizationReport) -> int:
    return sum(
        1 for row in report.lwp_rows
        if row.utime_pct + row.stime_pct >= 5.0 and row.kind != "ZeroSum"
    )


def advise(
    monitor: ZeroSum,
    options: SrunOptions,
    report: Optional[UtilizationReport] = None,
    contention: Optional[ContentionReport] = None,
) -> Advice:
    """Produce launch-configuration advice from one rank's observations."""
    report = report or build_report(monitor)
    contention = contention or analyze(monitor, report)
    machine: Machine = monitor.process.node.machine
    advice = Advice(original=options)
    opt_changes: dict[str, object] = {}
    env_changes: dict[str, str] = {}

    busy = _busy_threads_per_rank(report)

    # 1. oversubscription: the Table 1 -> Table 2 fix
    if contention.by_code("oversubscription") or (
        busy > options.cpus_per_task * options.threads_per_core
    ):
        wanted = max(busy, 2)
        # cap at what one NUMA/L3 region offers so ranks stay local
        per_l3 = max(
            len(region.cpuset() - machine.reserved_cpus) // max(
                1, len(machine.smt_siblings(region.cpuset().first()))
            )
            for region in machine.l3_regions()
        ) if machine.l3_regions() else wanted
        suggestion_c = min(wanted, per_l3) if per_l3 else wanted
        advice.suggestions.append(
            Suggestion(
                code="request-more-cpus",
                message=(
                    f"{busy} busy threads share "
                    f"{options.cpus_per_task} allocated CPU(s) per rank: "
                    f"request -c{suggestion_c} so each thread gets a core"
                ),
                option_changes=(("cpus_per_task", suggestion_c),),
            )
        )
        opt_changes["cpus_per_task"] = suggestion_c

    # 2. unbound threads: the Table 2 -> Table 3 fix
    proc_cpus = monitor.initial.cpus_allowed
    unbound_busy = [
        row for row in report.lwp_rows
        if row.utime_pct + row.stime_pct >= 5.0
        and len(row.cpus) > 1 and row.cpus == proc_cpus
    ]
    bind = (options.env.get("OMP_PROC_BIND") or "false").lower()
    if unbound_busy and bind in ("", "false") and len(proc_cpus) > 1:
        advice.suggestions.append(
            Suggestion(
                code="bind-threads",
                message=(
                    f"{len(unbound_busy)} busy threads are unbound within "
                    f"[{proc_cpus.to_list()}]: set OMP_PROC_BIND=spread "
                    f"OMP_PLACES=cores to pin one per core and stop "
                    f"migrations"
                ),
                env_changes=(("OMP_PROC_BIND", "spread"),
                             ("OMP_PLACES", "cores")),
            )
        )
        env_changes.update(OMP_PROC_BIND="spread", OMP_PLACES="cores")

    # 3. GPU locality: the Figure 2 fix
    if contention.by_code("gpu-locality") and options.gpu_bind != "closest":
        advice.suggestions.append(
            Suggestion(
                code="gpu-bind-closest",
                message=(
                    "a rank drives a GPU outside its NUMA domain: add "
                    "--gpu-bind=closest so each rank gets a local device"
                ),
                option_changes=(("gpu_bind", "closest"),),
            )
        )
        opt_changes["gpu_bind"] = "closest"

    # 4. undersubscription: allocated cores doing nothing
    under = contention.by_code("undersubscription")
    if under and busy < options.cpus_per_task:
        advice.suggestions.append(
            Suggestion(
                code="trim-allocation",
                message=(
                    f"only {busy} of {options.cpus_per_task} allocated "
                    f"CPUs per rank do work: either lower -c or raise "
                    f"OMP_NUM_THREADS to use what you asked for"
                ),
            )
        )

    # 5. memory pressure: spread ranks out
    if contention.by_code("memory-pressure") or contention.by_code("oom"):
        advice.suggestions.append(
            Suggestion(
                code="reduce-memory-per-node",
                message=(
                    "node memory was (nearly) exhausted: reduce ranks per "
                    "node or request more nodes"
                ),
            )
        )

    if advice.suggestions:
        new_env = dict(options.env)
        new_env.update(env_changes)
        advice.suggested = replace(options, env=new_env, **opt_changes)
    return advice
