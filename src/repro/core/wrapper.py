"""The ``zerosum-mpi`` wrapper (LD_PRELOAD injection, §3.1).

On a real system ZeroSum is injected with ``LD_PRELOAD`` and
initializes itself by wrapping ``__libc_start_main``.  In the
simulation the equivalent seam is the launcher's ``monitor_factory``:
:func:`zerosum_mpi` returns a factory that attaches one
:class:`~repro.core.monitor.ZeroSum` instance to every rank's process
before the job starts, wiring up the GPU SMI session, the MPI
point-to-point wrapper, and the OMPT callback.

Example::

    step = launch_job(
        [frontier_node()],
        SrunOptions.parse("srun -n8 -c7 miniqmc"),
        miniqmc_app(MiniQmcConfig()),
        monitor_factory=zerosum_mpi(ZeroSumConfig()),
    )
    step.run()
    step.finalize()
    print(build_report(step.monitors[0]).render())
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import ZeroSumConfig
from repro.core.monitor import ZeroSum
from repro.core.stream import SampleStream
from repro.launch.job import RankContext

__all__ = ["zerosum_mpi"]


def zerosum_mpi(
    config: Optional[ZeroSumConfig] = None,
    stream: Optional["SampleStream"] = None,
) -> Callable[[RankContext], ZeroSum]:
    """Monitor factory for :func:`repro.launch.launch_job`.

    Pass a :class:`~repro.core.stream.SampleStream` to receive one
    condensed event per rank per sampling period during the run (the
    LDMS/TAU integration seam of §6).
    """
    cfg = config or ZeroSumConfig()

    def factory(ctx: RankContext) -> ZeroSum:
        assert ctx.kernel is not None and ctx.process is not None
        return ZeroSum(
            ctx.kernel,
            ctx.process,
            config=cfg,
            gpus=ctx.gpus,
            comm=ctx.comm,
            omp=ctx.omp,
            stream=stream,
        )

    return factory
