"""ZeroSum monitor configuration.

Mirrors the runtime knobs of the paper's prototype: sampling period
(1 s default), placement of the asynchronous monitoring thread (last
hardware thread of the process by default, user configurable), which
subsystems to collect, and export behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MonitorError

__all__ = ["ZeroSumConfig"]


@dataclass
class ZeroSumConfig:
    """Configuration for one ZeroSum monitor instance."""

    #: sampling period in seconds (paper default: once per second)
    period_seconds: float = 1.0
    #: fixed CPU cost of taking one sample, in jiffies (drives the
    #: measured overhead; 0.15 jiffy/s ≈ 0.15 % of one core)
    sample_cost_jiffies: float = 0.15
    #: additional cost per observed LWP (each thread means reading two
    #: more /proc files), in jiffies
    sample_cost_per_thread: float = 0.01
    #: user fraction of the sampling work (the rest is system calls —
    #: /proc reads are syscall heavy)
    sample_user_frac: float = 0.4
    #: where the async thread goes: "last" | "first" | an explicit OS CPU
    #: index | None for unbound
    monitor_cpu: str | int | None = "last"
    collect_hwt: bool = True
    collect_gpu: bool = True
    collect_memory: bool = True
    collect_mpi: bool = True
    #: print a heartbeat line every N samples (0 disables)
    heartbeat_every: int = 0
    #: flag a suspected deadlock after N consecutive stalled samples
    #: (0 disables detection)
    deadlock_after: int = 3
    #: what to do when a deadlock is flagged: "report" (default) or
    #: "terminate" — kill the hung process to stop burning allocation
    deadlock_action: str = "report"
    #: how OpenMP threads are identified: "ompt" uses the 5.1+ tool
    #: callback; "probe" is the pre-5.1 fallback that queries the team
    #: directly (the paper's GNU-runtime path)
    openmp_detection: str = "ompt"
    #: install the abnormal-exit backtrace handler
    signal_handler: bool = True
    #: keep per-sample time series (needed for CSV export and Figures 6-7)
    keep_series: bool = True
    #: cap each series at this many rows (ring buffer: oldest rows are
    #: overwritten); None keeps everything.  For long-running live
    #: sessions that still want a trailing window of raw samples.
    max_series_rows: int | None = None
    #: in-period retries after a transient collector failure (vanished
    #: path, I/O hiccup); permanent failures are never retried
    fault_retries: int = 2
    #: disable a collector after N consecutive failed periods and
    #: record why (0 keeps retrying forever)
    fault_disable_after: int = 3
    #: base backoff between live-monitor retries, doubled per attempt
    #: (the simulated monitor never sleeps regardless)
    fault_backoff_seconds: float = 0.0
    #: crash durability: spool every committed period to this spill
    #: journal so a kill -9'd run stays recoverable (None disables)
    journal_path: str | None = None
    #: compact the journal into an atomic snapshot every N periods
    journal_checkpoint_every: int = 10
    #: fsync the journal at checkpoints (power-loss durability; plain
    #: per-record flushes already survive a process kill)
    journal_fsync: bool = True
    #: write heartbeat lines to this file as well as keeping them in
    #: memory (None keeps them in memory only)
    heartbeat_path: str | None = None
    #: fsync the heartbeat file after every line, so an external
    #: watchdog reading it never sees a stale-but-buffered heartbeat
    heartbeat_fsync: bool = False
    #: last-gasp flush: install SIGTERM/SIGINT + atexit handlers that
    #: fsync the journal before the process dies (live monitor only;
    #: effective only when a journal is configured)
    last_gasp: bool = True
    #: watchdog: flag a stalled sampler thread or a monitored process
    #: whose jiffies stop advancing after this many sampling periods
    #: of silence (0 disables the watchdog)
    watchdog_stall_periods: float = 0.0
    #: online detection: evaluate the §3.5 contention rules and the
    #: precursor detectors once per committed sampling period
    detect_online: bool = False
    #: per-entity metric-history window the detector keeps (samples)
    detect_window: int = 16
    #: only raise a projected-OOM finding when the ETA is inside this
    #: horizon (seconds)
    detect_oom_horizon_s: float = 600.0
    #: keep at most this many findings in memory (the journal keeps
    #: them all regardless)
    detect_max_alerts: int = 256
    #: extra environment-style options
    extra: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.period_seconds <= 0:
            raise MonitorError("period_seconds must be positive")
        if self.sample_cost_jiffies < 0:
            raise MonitorError("sample_cost_jiffies must be >= 0")
        if self.sample_cost_per_thread < 0:
            raise MonitorError("sample_cost_per_thread must be >= 0")
        if not 0.0 <= self.sample_user_frac <= 1.0:
            raise MonitorError("sample_user_frac must be in [0, 1]")
        if isinstance(self.monitor_cpu, str) and self.monitor_cpu not in (
            "last",
            "first",
        ):
            raise MonitorError(
                "monitor_cpu must be 'last', 'first', an int, or None"
            )
        if self.deadlock_after < 0:
            raise MonitorError("deadlock_after must be >= 0")
        if self.max_series_rows is not None and self.max_series_rows < 1:
            raise MonitorError("max_series_rows must be >= 1 (or None)")
        if self.fault_retries < 0:
            raise MonitorError("fault_retries must be >= 0")
        if self.fault_disable_after < 0:
            raise MonitorError("fault_disable_after must be >= 0")
        if self.fault_backoff_seconds < 0:
            raise MonitorError("fault_backoff_seconds must be >= 0")
        if self.journal_checkpoint_every < 1:
            raise MonitorError("journal_checkpoint_every must be >= 1")
        if self.watchdog_stall_periods < 0:
            raise MonitorError("watchdog_stall_periods must be >= 0")
        if self.detect_window < 4:
            raise MonitorError("detect_window must be >= 4")
        if self.detect_oom_horizon_s <= 0:
            raise MonitorError("detect_oom_horizon_s must be positive")
        if self.detect_max_alerts < 1:
            raise MonitorError("detect_max_alerts must be >= 1")
        if self.deadlock_action not in ("report", "terminate"):
            raise MonitorError("deadlock_action must be 'report' or 'terminate'")
        if self.openmp_detection not in ("ompt", "probe"):
            raise MonitorError("openmp_detection must be 'ompt' or 'probe'")
