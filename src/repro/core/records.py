"""Sample storage: growable column buffers for periodic observations.

ZeroSum keeps everything it samples so the log can be dumped as CSV
time series (§3.6) and post-processed into the stacked charts of
Figures 6 and 7.  Counters are stored *cumulatively*, as read from
``/proc``; per-interval rates are derived at analysis time.

A buffer may be capped with ``max_rows``: once full it becomes a ring
and every further append overwrites the oldest row.  Long-running live
monitors use this to bound memory while keeping a trailing window.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import MonitorError
from repro.gpu.metrics import METRIC_ORDER as _METRIC_ORDER

__all__ = [
    "SeriesBuffer",
    "LWP_COLUMNS",
    "HWT_COLUMNS",
    "MEM_COLUMNS",
    "GPU_COLUMNS",
    "STATE_CODES",
    "state_code",
]

#: numeric codes for /proc state letters, stable across exports
STATE_CODES: dict[str, int] = {"R": 0, "S": 1, "D": 2, "T": 3, "Z": 4, "X": 5}


def state_code(letter: str) -> int:
    """Numeric code for a /proc state letter (unknown -> dead)."""
    return STATE_CODES.get(letter, 5)


LWP_COLUMNS: tuple[str, ...] = (
    "tick",
    "state",
    "utime",
    "stime",
    "nv_ctx",
    "ctx",
    "minflt",
    "majflt",
    "processor",
)

HWT_COLUMNS: tuple[str, ...] = ("tick", "user", "system", "idle", "iowait")

MEM_COLUMNS: tuple[str, ...] = (
    "tick",
    "mem_total_kib",
    "mem_free_kib",
    "mem_available_kib",
    "rss_kib",
    "io_read_kib",
    "io_write_kib",
)

#: GPU columns follow repro.gpu.metrics.METRIC_ORDER, prefixed by tick.
GPU_COLUMNS: tuple[str, ...] = ("tick",) + _METRIC_ORDER


class SeriesBuffer:
    """A small column store with amortized O(1) row append.

    With ``max_rows`` set the buffer is a ring: it grows normally until
    it holds ``max_rows`` rows, then each append overwrites the oldest
    row.  ``appended`` counts every row ever offered, so callers can
    detect how much history was dropped.
    """

    def __init__(
        self,
        columns: Sequence[str],
        capacity: int = 64,
        max_rows: int | None = None,
    ):
        if not columns:
            raise MonitorError("series needs at least one column")
        if max_rows is not None and max_rows < 1:
            raise MonitorError("max_rows must be >= 1")
        self.columns = tuple(columns)
        self.max_rows = max_rows
        cap = max(1, capacity)
        if max_rows is not None:
            cap = min(cap, max_rows)
        self._data = np.zeros((cap, len(self.columns)), dtype=np.float64)
        self._len = 0
        self._head = 0  # oldest row / next overwrite position once saturated
        self.appended = 0

    def _check_width(self, row: Sequence[float]) -> None:
        if len(row) != len(self.columns):
            raise MonitorError(
                f"row has {len(row)} values, series has {len(self.columns)} columns"
            )

    def append(self, row: Sequence[float]) -> None:
        """Append one row (width-checked); overwrites the oldest when full."""
        self._check_width(row)
        self.appended += 1
        if self.max_rows is not None and self._len == self.max_rows:
            self._data[self._head] = row
            self._head = (self._head + 1) % self.max_rows
            return
        if self._len == self._data.shape[0]:
            grow = self._data.shape[0] * 2
            if self.max_rows is not None:
                grow = min(grow, self.max_rows)
            grown = np.zeros((grow, len(self.columns)), dtype=np.float64)
            grown[: self._len] = self._data
            self._data = grown
        self._data[self._len] = row
        self._len += 1

    # -- rollback support ----------------------------------------------
    def prepare_undo(self, will_replace: bool) -> tuple:
        """O(1) token undoing the *next* append or ``replace_last``.

        Captures the cursor state plus a copy of whichever stored row
        the coming mutation will overwrite (the oldest row for a
        saturated ring append, the newest for a replace), so
        :meth:`undo` can restore the buffer bit-for-bit.  Tokens must
        be applied in reverse order of capture.
        """
        saved: tuple[int, np.ndarray] | None = None
        if will_replace and self._len > 0:
            if self.max_rows is not None and self._len == self.max_rows:
                idx = (self._head - 1) % self.max_rows
            else:
                idx = self._len - 1
            saved = (idx, self._data[idx].copy())
        elif (
            not will_replace
            and self.max_rows is not None
            and self._len == self.max_rows
        ):
            saved = (self._head, self._data[self._head].copy())
        return (self._len, self._head, self.appended, saved)

    def undo(self, token: tuple) -> None:
        """Rewind one mutation recorded by :meth:`prepare_undo`."""
        length, head, appended, saved = token
        self._len, self._head, self.appended = length, head, appended
        if saved is not None:
            idx, row = saved
            self._data[idx] = row

    def replace_last(self, row: Sequence[float]) -> None:
        """Overwrite the most recently appended row (append when empty).

        This is what summary mode uses: the store keeps only the rows
        the end-of-run report needs and refreshes the newest in place.
        """
        if self._len == 0:
            self.append(row)
            return
        self._check_width(row)
        if self.max_rows is not None and self._len == self.max_rows:
            idx = (self._head - 1) % self.max_rows
        else:
            idx = self._len - 1
        self._data[idx] = row

    def __len__(self) -> int:
        return self._len

    @property
    def dropped(self) -> int:
        """Rows overwritten by the ring (0 for unbounded buffers)."""
        return self.appended - self._len

    @property
    def array(self) -> np.ndarray:
        """(n, ncols) array of the recorded rows, oldest first.

        A view when the ring has not wrapped; a copy once it has.
        """
        if self._head == 0:
            return self._data[: self._len]
        return np.concatenate(
            (self._data[self._head : self._len], self._data[: self._head])
        )

    def column(self, name: str) -> np.ndarray:
        """One named column of the recorded rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise MonitorError(f"no column {name!r}") from None
        return self.array[:, idx]

    def last(self, name: str) -> float:
        """Latest value of a column; raises when empty."""
        col = self.column(name)
        if len(col) == 0:
            raise MonitorError("series is empty")
        return float(col[-1])

    def deltas(self, name: str) -> np.ndarray:
        """Per-interval increments of a cumulative counter column."""
        return np.diff(self.column(name), prepend=0.0)

    def iter_rows(self) -> Iterator[dict[str, float]]:
        """Rows as dicts, oldest first."""
        for row in self.array:
            yield dict(zip(self.columns, row))

    def to_csv(self, prefix_cols: dict[str, object] | None = None) -> str:
        """Render as CSV text, optionally with constant prefix columns.

        Whole numbers render without a decimal point, everything else
        with 6 significant digits — formatting is vectorized per column
        rather than per value.
        """
        prefix = prefix_cols or {}
        header = ",".join(list(prefix) + list(self.columns))
        arr = self.array
        if arr.shape[0] == 0:
            return header + "\n"
        # one printf conversion per column, decided from a numpy mask over
        # the whole column; only genuinely mixed columns pay a per-value
        # pass.  Each row then renders with a single C-level % call.
        fmt_parts: list[str] = []
        cols: list[list] = []
        for j in range(arr.shape[1]):
            col = arr[:, j]
            whole = np.isfinite(col) & (np.mod(col, 1) == 0)
            if whole.all():
                fmt_parts.append("%d")
                cols.append(col.tolist())
            elif not whole.any():
                fmt_parts.append("%.6g")
                cols.append(col.tolist())
            else:
                fmt_parts.append("%s")
                cols.append(
                    [
                        "%d" % v if w else "%.6g" % v
                        for v, w in zip(col.tolist(), whole.tolist())
                    ]
                )
        fmt = ",".join(fmt_parts)
        if prefix:
            pre = ",".join(str(v) for v in prefix.values()) + ","
            fmt = pre.replace("%", "%%") + fmt
        body = "\n".join(fmt % row for row in zip(*cols))
        return header + "\n" + body + "\n"
