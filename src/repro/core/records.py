"""Sample storage: growable column buffers for periodic observations.

ZeroSum keeps everything it samples so the log can be dumped as CSV
time series (§3.6) and post-processed into the stacked charts of
Figures 6 and 7.  Counters are stored *cumulatively*, as read from
``/proc``; per-interval rates are derived at analysis time.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import MonitorError

__all__ = [
    "SeriesBuffer",
    "LWP_COLUMNS",
    "HWT_COLUMNS",
    "MEM_COLUMNS",
    "GPU_COLUMNS",
    "STATE_CODES",
    "state_code",
]

#: numeric codes for /proc state letters, stable across exports
STATE_CODES: dict[str, int] = {"R": 0, "S": 1, "D": 2, "T": 3, "Z": 4, "X": 5}


def state_code(letter: str) -> int:
    """Numeric code for a /proc state letter (unknown -> dead)."""
    return STATE_CODES.get(letter, 5)


LWP_COLUMNS: tuple[str, ...] = (
    "tick",
    "state",
    "utime",
    "stime",
    "nv_ctx",
    "ctx",
    "minflt",
    "majflt",
    "processor",
)

HWT_COLUMNS: tuple[str, ...] = ("tick", "user", "system", "idle", "iowait")

MEM_COLUMNS: tuple[str, ...] = (
    "tick",
    "mem_total_kib",
    "mem_free_kib",
    "mem_available_kib",
    "rss_kib",
    "io_read_kib",
    "io_write_kib",
)

from repro.gpu.metrics import METRIC_ORDER as _METRIC_ORDER

#: GPU columns follow repro.gpu.metrics.METRIC_ORDER, prefixed by tick.
GPU_COLUMNS: tuple[str, ...] = ("tick",) + _METRIC_ORDER


class SeriesBuffer:
    """A small column store with amortized O(1) row append."""

    def __init__(self, columns: Sequence[str], capacity: int = 64):
        if not columns:
            raise MonitorError("series needs at least one column")
        self.columns = tuple(columns)
        self._data = np.zeros((max(1, capacity), len(self.columns)), dtype=np.float64)
        self._len = 0

    def append(self, row: Sequence[float]) -> None:
        """Append one row (width-checked)."""
        if len(row) != len(self.columns):
            raise MonitorError(
                f"row has {len(row)} values, series has {len(self.columns)} columns"
            )
        if self._len == self._data.shape[0]:
            grown = np.zeros(
                (self._data.shape[0] * 2, len(self.columns)), dtype=np.float64
            )
            grown[: self._len] = self._data
            self._data = grown
        self._data[self._len] = row
        self._len += 1

    def __len__(self) -> int:
        return self._len

    @property
    def array(self) -> np.ndarray:
        """(n, ncols) view of the recorded rows (no copy)."""
        return self._data[: self._len]

    def column(self, name: str) -> np.ndarray:
        """One named column of the recorded rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise MonitorError(f"no column {name!r}") from None
        return self.array[:, idx]

    def last(self, name: str) -> float:
        """Latest value of a column; raises when empty."""
        col = self.column(name)
        if len(col) == 0:
            raise MonitorError("series is empty")
        return float(col[-1])

    def deltas(self, name: str) -> np.ndarray:
        """Per-interval increments of a cumulative counter column."""
        return np.diff(self.column(name), prepend=0.0)

    def iter_rows(self) -> Iterator[dict[str, float]]:
        """Rows as dicts, oldest first."""
        for i in range(self._len):
            yield dict(zip(self.columns, self._data[i]))

    def to_csv(self, prefix_cols: dict[str, object] | None = None) -> str:
        """Render as CSV text, optionally with constant prefix columns."""
        prefix = prefix_cols or {}
        header = list(prefix) + list(self.columns)
        lines = [",".join(header)]
        pvals = [str(v) for v in prefix.values()]
        for i in range(self._len):
            row = [
                f"{v:.6g}" if not float(v).is_integer() else str(int(v))
                for v in self._data[i]
            ]
            lines.append(",".join(pvals + row))
        return "\n".join(lines) + "\n"
