"""ZeroSum core: the paper's user-space monitor.

Typical flow::

    from repro.core import ZeroSum, ZeroSumConfig, zerosum_mpi, build_report

    step = launch_job(nodes, options, app, monitor_factory=zerosum_mpi())
    step.run()
    step.finalize()
    report = build_report(step.monitors[0])
    findings = analyze(step.monitors[0])
"""

from repro.core.advisor import Advice, Suggestion, advise
from repro.core.archive import ArchiveData, RankSeries, read_archive, write_archive
from repro.core.config import ZeroSumConfig
from repro.core.contention import ContentionReport, Finding, Severity, analyze
from repro.core.detect import ProcessConfig, detect_configuration
from repro.core.export import (
    FileSink,
    MemorySink,
    gpu_csv,
    hwt_csv,
    lwp_csv,
    memory_csv,
    write_log,
)
from repro.core.heartbeat import ProgressTracker, ThreadSnapshot
from repro.core.heatmap import CommMatrix, merge_monitors
from repro.core.monitor import ZeroSum
from repro.core.records import SeriesBuffer, state_code
from repro.core.stream import (
    CallbackSubscriber,
    LdmsAggregator,
    SampleEvent,
    SampleStream,
)
from repro.core.reports import (
    GpuStat,
    HwtRow,
    LwpRow,
    UtilizationReport,
    build_report,
    format_cpus,
)
from repro.core.wrapper import zerosum_mpi

__all__ = [
    "ZeroSum",
    "advise",
    "Advice",
    "Suggestion",
    "write_archive",
    "read_archive",
    "ArchiveData",
    "RankSeries",
    "SampleStream",
    "SampleEvent",
    "LdmsAggregator",
    "CallbackSubscriber",
    "ZeroSumConfig",
    "zerosum_mpi",
    "build_report",
    "UtilizationReport",
    "LwpRow",
    "HwtRow",
    "GpuStat",
    "format_cpus",
    "analyze",
    "ContentionReport",
    "Finding",
    "Severity",
    "detect_configuration",
    "ProcessConfig",
    "ProgressTracker",
    "ThreadSnapshot",
    "CommMatrix",
    "merge_monitors",
    "SeriesBuffer",
    "state_code",
    "MemorySink",
    "FileSink",
    "write_log",
    "lwp_csv",
    "hwt_csv",
    "gpu_csv",
    "memory_csv",
]
