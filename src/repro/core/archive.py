"""Columnar time-series archive (the §6 ADIOS2 substitution).

The paper's last future-work item: "the log output from ZeroSum should
be refactored to utilize the time-series I/O staging library ADIOS2."
ADIOS2 stores named typed arrays per step in a self-describing
container; the closest dependency-free equivalent is a compressed
``.npz`` with a naming convention::

    rank{R}/lwp/{tid}      -> (n, len(LWP_COLUMNS)) float64
    rank{R}/hwt/{cpu}      -> (n, len(HWT_COLUMNS)) float64
    rank{R}/gpu/{visible}  -> (n, 1 + len(METRIC_ORDER)) float64
    rank{R}/mem            -> (n, len(MEM_COLUMNS)) float64
    rank{R}/p2p            -> (world, world) int64 bytes matrix

plus a JSON metadata blob (column names, duration, hostnames), so the
archive is loadable without this package.  :func:`write_archive` dumps
any number of rank monitors; :func:`read_archive` restores them into
plain-array form for analysis.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.monitor import ZeroSum
from repro.core.records import HWT_COLUMNS, LWP_COLUMNS, MEM_COLUMNS
from repro.errors import MonitorError
from repro.gpu.metrics import METRIC_ORDER

__all__ = [
    "RankSeries",
    "ArchiveData",
    "write_archive",
    "write_store_archive",
    "read_archive",
]


def _atomic_savez(path: str | Path | io.BytesIO, arrays: dict) -> None:
    """Write a compressed npz atomically: ``*.tmp`` + fsync + rename.

    An end-of-run archive is often the last thing a job writes before
    walltime kills it; a crash mid-write must leave either the
    previous archive or none — never a half-written one.  File-like
    targets (``BytesIO``) write directly, as before.
    """
    if not isinstance(path, (str, Path)):
        np.savez_compressed(path, **arrays)
        return
    final = Path(path)
    if not final.name.endswith(".npz"):
        # numpy appends .npz to plain string paths; mirror it so the
        # rename target is the file callers will read back
        final = final.with_name(final.name + ".npz")
    tmp = final.with_name(final.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez_compressed(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)


def _columns_meta() -> dict:
    return {
        "lwp": list(LWP_COLUMNS),
        "hwt": list(HWT_COLUMNS),
        "mem": list(MEM_COLUMNS),
        "gpu": ["tick", *METRIC_ORDER],
    }


def _add_rank_arrays(
    arrays: dict,
    meta: dict,
    *,
    key: int,
    hostname: str,
    duration_seconds: float,
    pid: int,
    lwp,
    hwt,
    gpu,
    mem,
    p2p: Optional[np.ndarray] = None,
) -> None:
    prefix = f"rank{key}"
    meta["ranks"][str(key)] = {
        "hostname": hostname,
        "duration_seconds": duration_seconds,
        "pid": pid,
    }
    for tid, series in lwp.items():
        arrays[f"{prefix}/lwp/{tid}"] = series.array.copy()
    for cpu, series in hwt.items():
        arrays[f"{prefix}/hwt/{cpu}"] = series.array.copy()
    for visible, series in gpu.items():
        arrays[f"{prefix}/gpu/{visible}"] = series.array.copy()
    if len(mem):
        arrays[f"{prefix}/mem"] = mem.array.copy()
    if p2p is not None:
        arrays[f"{prefix}/p2p"] = p2p.copy()


@dataclass
class RankSeries:
    """One rank's arrays, as restored from an archive."""

    rank: int
    hostname: str
    duration_seconds: float
    lwp: dict[int, np.ndarray] = field(default_factory=dict)
    hwt: dict[int, np.ndarray] = field(default_factory=dict)
    gpu: dict[int, np.ndarray] = field(default_factory=dict)
    mem: Optional[np.ndarray] = None
    p2p: Optional[np.ndarray] = None


@dataclass
class ArchiveData:
    """A whole job's restored archive."""

    columns: dict[str, list[str]]
    ranks: dict[int, RankSeries] = field(default_factory=dict)

    def rank(self, r: int) -> RankSeries:
        """One rank's restored series; raises for unknown ranks."""
        try:
            return self.ranks[r]
        except KeyError:
            raise MonitorError(f"archive has no rank {r}") from None


def write_archive(
    monitors: list[ZeroSum], path: str | Path | io.BytesIO
) -> None:
    """Dump all rank monitors into one compressed npz archive.

    Path targets are written atomically (tmp file, fsync, rename) so a
    crash can never leave a half-written archive behind.
    """
    if not monitors:
        raise MonitorError("no monitors to archive")
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"columns": _columns_meta(), "ranks": {}}
    for monitor in monitors:
        rank = monitor.process.rank
        _add_rank_arrays(
            arrays,
            meta,
            key=rank if rank is not None else -monitor.process.pid,
            hostname=monitor.process.node.hostname,
            duration_seconds=monitor.duration_seconds,
            pid=monitor.process.pid,
            lwp=monitor.lwp_series,
            hwt=monitor.hwt_series,
            gpu=monitor.gpu_series,
            mem=monitor.mem_series,
            p2p=monitor.recorder.bytes if monitor.recorder is not None else None,
        )
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    _atomic_savez(path, arrays)


def write_store_archive(
    run,
    path: str | Path | io.BytesIO,
) -> None:
    """Archive one store-backed run (live monitor or recovered journal).

    ``run`` is anything with the common monitor surface — the series
    maps plus ``pid``/``hostname``/``duration_seconds`` and optional
    ``rank`` — which is exactly what :class:`~repro.collect.journal.
    RecoveredRun` exposes, making a ``kill -9``'d run archivable after
    the fact.  Written atomically, same as :func:`write_archive`.
    """
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {"columns": _columns_meta(), "ranks": {}}
    rank = getattr(run, "rank", None)
    _add_rank_arrays(
        arrays,
        meta,
        key=rank if rank is not None else -run.pid,
        hostname=run.hostname,
        duration_seconds=run.duration_seconds,
        pid=run.pid,
        lwp=run.lwp_series,
        hwt=run.hwt_series,
        gpu=run.gpu_series,
        mem=run.mem_series,
    )
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    _atomic_savez(path, arrays)


def read_archive(path: str | Path | io.BytesIO) -> ArchiveData:
    """Restore an archive written by :func:`write_archive`."""
    with np.load(path) as data:
        if "__meta__" not in data:
            raise MonitorError("not a ZeroSum archive (missing metadata)")
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        out = ArchiveData(columns=meta["columns"])
        for key, info in meta["ranks"].items():
            out.ranks[int(key)] = RankSeries(
                rank=int(key),
                hostname=info["hostname"],
                duration_seconds=info["duration_seconds"],
            )
        for name in data.files:
            if name == "__meta__":
                continue
            parts = name.split("/")
            rank = int(parts[0][len("rank"):])
            series = out.ranks[rank]
            if parts[1] == "lwp":
                series.lwp[int(parts[2])] = data[name]
            elif parts[1] == "hwt":
                series.hwt[int(parts[2])] = data[name]
            elif parts[1] == "gpu":
                series.gpu[int(parts[2])] = data[name]
            elif parts[1] == "mem":
                series.mem = data[name]
            elif parts[1] == "p2p":
                series.p2p = data[name]
    return out
