"""Columnar time-series archive (the §6 ADIOS2 substitution).

The paper's last future-work item: "the log output from ZeroSum should
be refactored to utilize the time-series I/O staging library ADIOS2."
ADIOS2 stores named typed arrays per step in a self-describing
container; the closest dependency-free equivalent is a compressed
``.npz`` with a naming convention::

    rank{R}/lwp/{tid}      -> (n, len(LWP_COLUMNS)) float64
    rank{R}/hwt/{cpu}      -> (n, len(HWT_COLUMNS)) float64
    rank{R}/gpu/{visible}  -> (n, 1 + len(METRIC_ORDER)) float64
    rank{R}/mem            -> (n, len(MEM_COLUMNS)) float64
    rank{R}/p2p            -> (world, world) int64 bytes matrix

plus a JSON metadata blob (column names, duration, hostnames), so the
archive is loadable without this package.  :func:`write_archive` dumps
any number of rank monitors; :func:`read_archive` restores them into
plain-array form for analysis.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core.monitor import ZeroSum
from repro.core.records import HWT_COLUMNS, LWP_COLUMNS, MEM_COLUMNS
from repro.errors import MonitorError
from repro.gpu.metrics import METRIC_ORDER

__all__ = ["RankSeries", "ArchiveData", "write_archive", "read_archive"]


@dataclass
class RankSeries:
    """One rank's arrays, as restored from an archive."""

    rank: int
    hostname: str
    duration_seconds: float
    lwp: dict[int, np.ndarray] = field(default_factory=dict)
    hwt: dict[int, np.ndarray] = field(default_factory=dict)
    gpu: dict[int, np.ndarray] = field(default_factory=dict)
    mem: Optional[np.ndarray] = None
    p2p: Optional[np.ndarray] = None


@dataclass
class ArchiveData:
    """A whole job's restored archive."""

    columns: dict[str, list[str]]
    ranks: dict[int, RankSeries] = field(default_factory=dict)

    def rank(self, r: int) -> RankSeries:
        """One rank's restored series; raises for unknown ranks."""
        try:
            return self.ranks[r]
        except KeyError:
            raise MonitorError(f"archive has no rank {r}") from None


def write_archive(
    monitors: list[ZeroSum], path: str | Path | io.BytesIO
) -> None:
    """Dump all rank monitors into one compressed npz archive."""
    if not monitors:
        raise MonitorError("no monitors to archive")
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "columns": {
            "lwp": list(LWP_COLUMNS),
            "hwt": list(HWT_COLUMNS),
            "mem": list(MEM_COLUMNS),
            "gpu": ["tick", *METRIC_ORDER],
        },
        "ranks": {},
    }
    for monitor in monitors:
        rank = monitor.process.rank
        key = rank if rank is not None else -monitor.process.pid
        prefix = f"rank{key}"
        meta["ranks"][str(key)] = {
            "hostname": monitor.process.node.hostname,
            "duration_seconds": monitor.duration_seconds,
            "pid": monitor.process.pid,
        }
        for tid, series in monitor.lwp_series.items():
            arrays[f"{prefix}/lwp/{tid}"] = series.array.copy()
        for cpu, series in monitor.hwt_series.items():
            arrays[f"{prefix}/hwt/{cpu}"] = series.array.copy()
        for visible, series in monitor.gpu_series.items():
            arrays[f"{prefix}/gpu/{visible}"] = series.array.copy()
        if len(monitor.mem_series):
            arrays[f"{prefix}/mem"] = monitor.mem_series.array.copy()
        if monitor.recorder is not None:
            arrays[f"{prefix}/p2p"] = monitor.recorder.bytes.copy()
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def read_archive(path: str | Path | io.BytesIO) -> ArchiveData:
    """Restore an archive written by :func:`write_archive`."""
    with np.load(path) as data:
        if "__meta__" not in data:
            raise MonitorError("not a ZeroSum archive (missing metadata)")
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode())
        out = ArchiveData(columns=meta["columns"])
        for key, info in meta["ranks"].items():
            out.ranks[int(key)] = RankSeries(
                rank=int(key),
                hostname=info["hostname"],
                duration_seconds=info["duration_seconds"],
            )
        for name in data.files:
            if name == "__meta__":
                continue
            parts = name.split("/")
            rank = int(parts[0][len("rank"):])
            series = out.ranks[rank]
            if parts[1] == "lwp":
                series.lwp[int(parts[2])] = data[name]
            elif parts[1] == "hwt":
                series.hwt[int(parts[2])] = data[name]
            elif parts[1] == "gpu":
                series.gpu[int(parts[2])] = data[name]
            elif parts[1] == "mem":
                series.mem = data[name]
            elif parts[1] == "p2p":
                series.p2p = data[name]
    return out
