"""Initial configuration detection (§3.1, phase 1).

At startup ZeroSum queries ``/proc/self/status`` for the CPUs assigned
to the process, ``/proc/meminfo`` for the memory subsystem, the MPI
library (if initialized) for hostname/rank/size, and hwloc for the node
topology.  :func:`detect_configuration` performs the same queries
against the simulated substrate — *through the procfs text interface*,
not by peeking at simulator objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.procfs.filesystem import ProcFS
from repro.procfs.parsers import parse_meminfo, parse_pid_status
from repro.topology.cpuset import CpuSet
from repro.topology.lstopo import render_lstopo
from repro.topology.objects import Machine

__all__ = ["ProcessConfig", "detect_configuration"]


@dataclass
class ProcessConfig:
    """What ZeroSum knows about the process after initialization."""

    pid: int
    hostname: str
    cpus_allowed: CpuSet
    mem_total_kib: int
    mem_available_kib: int
    command: str = ""
    mpi_rank: Optional[int] = None
    mpi_size: Optional[int] = None
    num_threads: int = 1
    topology_text: str = ""
    gpu_visible: tuple[int, ...] = field(default_factory=tuple)

    @property
    def mpi_initialized(self) -> bool:
        return self.mpi_rank is not None

    def summary_lines(self) -> list[str]:
        """Startup banner written to the process log."""
        lines = [
            f"ZeroSum attached to PID {self.pid} on {self.hostname}",
            f"CPUs allowed: [{self.cpus_allowed.to_list()}]",
            f"MemTotal: {self.mem_total_kib} kB, "
            f"MemAvailable: {self.mem_available_kib} kB",
        ]
        if self.mpi_initialized:
            lines.append(f"MPI rank {self.mpi_rank} of {self.mpi_size}")
        if self.gpu_visible:
            lines.append(
                "Visible GPUs (physical indexes): "
                + ", ".join(str(g) for g in self.gpu_visible)
            )
        return lines


def detect_configuration(
    procfs: ProcFS,
    pid: int,
    machine: Optional[Machine] = None,
    include_topology: bool = True,
) -> ProcessConfig:
    """Run the §3.1 startup queries against a (simulated) /proc."""
    status = parse_pid_status(procfs.read(f"/proc/{pid}/status"))
    meminfo = parse_meminfo(procfs.read("/proc/meminfo"))
    proc = procfs.node.processes[pid]
    gpu_visible = tuple(
        dev.info.physical_index
        for dev in procfs.node.gpus
        if dev.info.visible_index is not None
    )
    topo = ""
    if include_topology:
        topo = render_lstopo(machine or procfs.node.machine)
    return ProcessConfig(
        pid=pid,
        hostname=procfs.node.hostname,
        cpus_allowed=status.cpus_allowed,
        mem_total_kib=meminfo["MemTotal"],
        mem_available_kib=meminfo.get("MemAvailable", meminfo.get("MemFree", 0)),
        command=proc.command,
        mpi_rank=proc.rank,
        mpi_size=proc.world_size,
        num_threads=status.threads,
        topology_text=topo,
        gpu_visible=gpu_visible,
    )
