"""The ZeroSum monitor: the *simulated-substrate driver* of the pipeline.

This is the paper's primary contribution.  One :class:`ZeroSum`
instance attaches to one process (the LD_PRELOAD injection of §3.1 is
modelled by :mod:`repro.core.wrapper`).  It

1. detects the initial configuration through ``/proc`` (phase 1);
2. spawns an asynchronous monitoring thread, pinned by default to the
   *last* hardware thread of the process's affinity list;
3. every period drives the shared
   :class:`~repro.collect.engine.CollectionEngine` — the same
   collectors, parsers, and store the live and replay drivers use —
   over the simulated ``/proc``;
4. wraps the MPI point-to-point API of its rank to accumulate the
   communication matrix;
5. tracks progress/deadlock, emits heartbeats, and on finalize holds
   everything the report and CSV exporters need.

All sampling, parsing, storage, and delta math lives in
:mod:`repro.collect`; this class only schedules samples and manages
lifecycle (OpenMP identification, crash handling, deadlock policy).
The sampling work costs simulated CPU (configurable jiffies per
sample), which is what the Figure 8 overhead experiment measures.
"""

from __future__ import annotations

import traceback
from typing import Optional

from repro.collect import (
    CollectionEngine,
    GpuCollector,
    HwtCollector,
    JournalWriter,
    LwpCollector,
    MemoryCollector,
    SampleStore,
)
from repro.collect.faults import FaultPolicy
from repro.core.config import ZeroSumConfig
from repro.core.detect import ProcessConfig, detect_configuration
from repro.core.heartbeat import ProgressTracker, heartbeat_line
from repro.detect import DetectThresholds, OnlineDetector
from repro.errors import MonitorError
from repro.gpu.backend import SmiBackend, make_smi
from repro.kernel.directives import Call, Compute, Sleep
from repro.kernel.lwp import LWP, Behavior, ThreadRole
from repro.kernel.process import SimProcess
from repro.kernel.scheduler import SimKernel
from repro.mpi.comm import RankComm
from repro.mpi.interpose import P2PRecorder
from repro.openmp.ompt import OmptEvent, OmptThreadType
from repro.openmp.runtime import OpenMPRuntime
from repro.procfs.filesystem import ProcFS
from repro.topology.cpuset import CpuSet

__all__ = ["ZeroSum"]


class ZeroSum:
    """User-space monitor attached to one (simulated) process."""

    def __init__(
        self,
        kernel: SimKernel,
        process: SimProcess,
        config: Optional[ZeroSumConfig] = None,
        gpus: Optional[list] = None,
        comm: Optional[RankComm] = None,
        omp: Optional[OpenMPRuntime] = None,
        stream: Optional["SampleStream"] = None,
    ):
        self.kernel = kernel
        self.process = process
        self.config = config or ZeroSumConfig()
        self.procfs = ProcFS(kernel, process.node, self_pid=process.pid)
        self.start_tick = kernel.now
        self.end_tick: Optional[int] = None

        # phase 1: initial configuration detection
        self.initial: ProcessConfig = detect_configuration(
            self.procfs, process.pid, machine=process.node.machine
        )

        # GPU SMI session over the devices visible to this rank,
        # dispatched to the vendor-appropriate backend (§3.4)
        self.smi: Optional[SmiBackend] = None
        if gpus and self.config.collect_gpu:
            self.smi = make_smi(gpus)

        # MPI point-to-point interposition
        self.comm = comm
        self.recorder: Optional[P2PRecorder] = None
        if comm is not None and self.config.collect_mpi:
            self.recorder = P2PRecorder(comm.Get_size())
            self.recorder.attach(comm)

        # OpenMP thread identification: OMPT callback (5.1+) or the
        # pre-5.1 probe that queries the team directly (§3.1.2)
        self._openmp_tids: set[int] = set()
        self._omp = omp
        if omp is not None and self.config.openmp_detection == "ompt":
            self.register_openmp(omp)

        # the shared collection pipeline over the simulated /proc
        self.store = SampleStore(
            keep_series=self.config.keep_series,
            max_rows=self.config.max_series_rows,
            summary_rows=1,  # zero baseline: the report needs only the latest row
            start_tick=self.start_tick,
        )
        collectors = [
            LwpCollector(
                self.procfs, self.store, process.pid, missing_process="ignore"
            )
        ]
        if self.config.collect_hwt:
            collectors.append(
                HwtCollector(self.procfs, self.store, self.initial.cpus_allowed)
            )
        if self.config.collect_memory:
            collectors.append(
                MemoryCollector(self.procfs, self.store, process.pid)
            )
        if self.smi is not None:
            collectors.append(GpuCollector(self.store, self.smi))
        # crash-durability spill journal: the sim driver journals the
        # same way the live one does, which is what makes the recovery
        # path deterministically testable (bit-identical reports)
        self.journal: Optional[JournalWriter] = None
        if self.config.journal_path:
            self.journal = JournalWriter(
                self.config.journal_path,
                checkpoint_every=self.config.journal_checkpoint_every,
                fsync=self.config.journal_fsync,
                classify=self.classify,
            )
        # online detection over the committed store, if configured —
        # the same detector class the live driver uses, fed the same
        # committed rows, which is what makes findings substrate-
        # identical between a simulated run and its recovery
        self.detector: Optional[OnlineDetector] = None
        if self.config.detect_online:
            machine = process.node.machine
            gpu_numa: dict[int, int] = {}
            rank_numas: set[int] = set()
            if self.smi is not None and len(machine.numa_domains()) > 1:
                for visible in range(self.smi.num_devices()):
                    gpu_numa[visible] = self.smi.device(visible).info.numa
                rank_numas = {
                    machine.numa_of(cpu).os_index
                    for cpu in self.initial.cpus_allowed
                    if machine.numa_of(cpu) is not None
                }
            self.detector = OnlineDetector(
                hz=kernel.clock.hz,
                window=self.config.detect_window,
                thresholds=DetectThresholds(
                    oom_horizon_s=self.config.detect_oom_horizon_s
                ),
                node_cpus=machine.cpuset(),
                gpu_numa=gpu_numa,
                rank_numas=rank_numas,
                max_alerts=self.config.detect_max_alerts,
            )
        # containment policy: no backoff actuator — retries are
        # immediate re-reads, keeping simulated sampling deterministic
        self.engine = CollectionEngine(
            self.store,
            collectors,
            policy=FaultPolicy(
                max_retries=self.config.fault_retries,
                disable_after=self.config.fault_disable_after,
            ),
            journal=self.journal,
            detector=self.detector,
        )
        if self.journal is not None:
            self.journal.open(
                self.store,
                {
                    "driver": "sim",
                    "baseline": "zero",
                    "hz": kernel.clock.hz,
                    "start_tick": self.start_tick,
                    "pid": process.pid,
                    "rank": process.rank,
                    "hostname": process.node.hostname,
                    "cpus_allowed": self.initial.cpus_allowed.to_list(),
                    "period_seconds": self.config.period_seconds,
                },
            )

        #: optional live export bus (the LDMS/TAU seam, §6)
        self.stream = stream
        self.heartbeats: list[str] = []
        self.crash_reports: list[str] = []
        if self.config.signal_handler:
            kernel.on_crash.append(self._on_crash)

        # progress / deadlock tracking
        self.progress = ProgressTracker(threshold=self.config.deadlock_after)

        # the asynchronous monitoring thread
        self.monitor_lwp: LWP = kernel.spawn_thread(
            process,
            self._monitor_behavior(),
            name="zerosum",
            affinity=self._monitor_affinity(),
            roles={ThreadRole.ZEROSUM},
            daemon=True,
        )
        self.progress.ignore_tids.add(self.monitor_lwp.tid)
        if self.detector is not None:
            # the monitor thread's own (light) activity must not trip
            # the per-thread rules, same as the progress tracker
            self.detector.ignore_tids.add(self.monitor_lwp.tid)
        self._finalized = False

    # ------------------------------------------------------------------
    def _monitor_affinity(self) -> CpuSet:
        cfg = self.config.monitor_cpu
        cpuset = self.process.cpuset
        if cfg is None:
            return cpuset
        if cfg == "last":
            return CpuSet([cpuset.last()])
        if cfg == "first":
            return CpuSet([cpuset.first()])
        if isinstance(cfg, int):
            if cfg not in self.process.node.machine.cpuset():
                raise MonitorError(f"monitor_cpu {cfg} not on this node")
            return CpuSet([cfg])
        raise MonitorError(f"bad monitor_cpu {cfg!r}")

    def probe_openmp_team(self) -> None:
        """Pre-OMPT fallback: identify the team by asking the runtime
        (the simulated analogue of launching a probe parallel region
        and collecting the member LWP ids, §3.1.2)."""
        if self._omp is None or not self._omp._initialized:
            return
        for worker in self._omp.workers:
            self._openmp_tids.add(worker.tid)
        self._openmp_tids.add(self.process.pid)

    def register_openmp(self, omp: OpenMPRuntime) -> None:
        """Register the OMPT thread-begin callback (§3.1.2)."""

        def on_thread_begin(thread_type: OmptThreadType, lwp: LWP) -> None:
            self._openmp_tids.add(lwp.tid)

        omp.ompt.set_callback(OmptEvent.THREAD_BEGIN, on_thread_begin)

    # ------------------------------------------------------------------
    def _monitor_behavior(self) -> Behavior:
        period = max(1, round(self.config.period_seconds * self.kernel.clock.hz))
        while True:
            yield Sleep(period)
            yield Call(lambda k, l: self.take_sample())
            cost = (
                self.config.sample_cost_jiffies
                + self.config.sample_cost_per_thread * self.store.last_thread_count
            )
            if cost > 0:
                yield Compute(cost, user_frac=self.config.sample_user_frac)

    # ------------------------------------------------------------------
    def classify(self, tid: int) -> str:
        """Thread type label, as in the paper's LWP table."""
        roles = []
        if tid == self.process.pid:
            roles.append("Main")
        if tid == self.monitor_lwp.tid:
            roles.append("ZeroSum")
        if tid in self._openmp_tids:
            roles.append("OpenMP")
        if not roles:
            roles.append("Other")
        return ", ".join(roles)

    # ------------------------------------------------------------------
    def take_sample(self) -> None:
        """One periodic observation (runs inside the monitor thread)."""
        tick = self.kernel.now
        # pre-5.1 OpenMP runtimes: probe the team like the paper's
        # fallback parallel region does
        if self._omp is not None and self.config.openmp_detection == "probe":
            self.probe_openmp_team()

        snapshots = self.engine.sample(tick)

        # -- heartbeat + deadlock suspicion ----------------------------
        if (
            self.config.heartbeat_every
            and self.store.samples_taken % self.config.heartbeat_every == 0
        ):
            self.heartbeats.append(
                heartbeat_line(
                    seconds=tick / self.kernel.clock.hz,
                    pid=self.process.pid,
                    threads=len(snapshots),
                    ledger=self.store.ledger,
                    alerts=self.store.alerts,
                )
            )
        # a process whose main thread returned is finished, not
        # deadlocked (daemon helper threads may outlive it)
        if self.config.deadlock_after and self.process.main_thread.alive:
            flagged = self.progress.observe(snapshots)
            if flagged and self.config.deadlock_action == "terminate" \
                    and self.process.alive:
                self.heartbeats.append(
                    f"[zerosum] t={tick / self.kernel.clock.hz:.1f}s "
                    f"pid={self.process.pid} TERMINATING: "
                    f"{self.progress.describe()}"
                )
                self.kernel.kill_process(self.process, exit_code=124)

        # -- live streaming (LDMS/TAU seam, §6) ------------------------
        if self.stream is not None:
            self.stream.publish(
                self.engine.make_event(
                    tick,
                    snapshots,
                    hz=self.kernel.clock.hz,
                    hostname=self.process.node.hostname,
                    pid=self.process.pid,
                    rank=self.process.rank,
                    monitor_tid=self.monitor_lwp.tid,
                    deadlock_suspected=self.progress.deadlock_suspected,
                )
            )
        self.engine.commit(tick, snapshots)

    # ------------------------------------------------------------------
    def _on_crash(self, kernel: SimKernel, lwp: LWP, exc: BaseException) -> None:
        if lwp.process is not self.process:
            return
        tb = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        self.crash_reports.append(
            f"*** ZeroSum abnormal-exit handler: LWP {lwp.tid} "
            f"({self.classify(lwp.tid)}) died at t="
            f"{kernel.now / kernel.clock.hz:.2f}s ***\n{tb}"
        )

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Take the final sample and close the observation window."""
        if self._finalized:
            return
        self.take_sample()
        self.end_tick = self.kernel.now
        if self.recorder is not None:
            self.recorder.detach_all()
        self.engine.close_journal(self.kernel.now)
        self._finalized = True

    # -- store access (the series live in the shared SampleStore) ------
    @property
    def lwp_series(self):
        return self.store.lwp_series

    @property
    def lwp_affinity(self):
        return self.store.lwp_affinity

    @property
    def lwp_names(self):
        return self.store.lwp_names

    @property
    def hwt_series(self):
        return self.store.hwt_series

    @property
    def gpu_series(self):
        return self.store.gpu_series

    @property
    def mem_series(self):
        return self.store.mem_series

    @property
    def samples_taken(self) -> int:
        return self.store.samples_taken

    @property
    def hz(self) -> float:
        """Tick rate of the recorded series (simulated jiffies/s)."""
        return self.kernel.clock.hz

    # -- derived quantities --------------------------------------------
    @property
    def duration_ticks(self) -> int:
        end = self.end_tick if self.end_tick is not None else self.kernel.now
        return max(1, end - self.start_tick)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ticks / self.kernel.clock.hz

    def observed_tids(self) -> list[int]:
        """Every thread id the monitor ever sampled, sorted."""
        return self.store.observed_tids()

    def lwp_last(self, tid: int, column: str) -> float:
        """Latest sampled value of one LWP column."""
        return self.store.lwp_series[tid].last(column)

    def deadlock_suspected(self) -> bool:
        """Whether the progress tracker has flagged a deadlock."""
        return self.progress.deadlock_suspected
