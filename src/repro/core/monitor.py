"""The ZeroSum monitor: asynchronous sampling of LWPs, HWTs, GPUs, memory.

This is the paper's primary contribution.  One :class:`ZeroSum`
instance attaches to one process (the LD_PRELOAD injection of §3.1 is
modelled by :mod:`repro.core.wrapper`).  It

1. detects the initial configuration through ``/proc`` (phase 1);
2. spawns an asynchronous monitoring thread, pinned by default to the
   *last* hardware thread of the process's affinity list;
3. every period (default 1 s) walks ``/proc/<pid>/task``, parses each
   task's ``stat``/``status``, reads the ``cpuN`` lines of
   ``/proc/stat`` restricted to the process cpuset, reads
   ``/proc/meminfo``, and queries the GPU SMI — all through the same
   textual interfaces a real deployment uses;
4. wraps the MPI point-to-point API of its rank to accumulate the
   communication matrix;
5. tracks progress/deadlock, emits heartbeats, and on finalize holds
   everything the report and CSV exporters need.

The sampling work itself costs simulated CPU (configurable jiffies per
sample), which is what the Figure 8 overhead experiment measures.
"""

from __future__ import annotations

import traceback
from typing import Optional

from repro.core.config import ZeroSumConfig
from repro.core.detect import ProcessConfig, detect_configuration
from repro.core.heartbeat import ProgressTracker, ThreadSnapshot
from repro.core.records import (
    HWT_COLUMNS,
    LWP_COLUMNS,
    MEM_COLUMNS,
    SeriesBuffer,
    state_code,
)
from repro.errors import MonitorError
from repro.gpu.metrics import METRIC_ORDER
from repro.gpu.backend import SmiBackend, make_smi
from repro.kernel.directives import Call, Compute, Sleep
from repro.kernel.lwp import LWP, Behavior, ThreadRole
from repro.kernel.process import SimProcess
from repro.kernel.scheduler import SimKernel
from repro.mpi.comm import RankComm
from repro.mpi.interpose import P2PRecorder
from repro.openmp.ompt import OmptEvent, OmptThreadType
from repro.openmp.runtime import OpenMPRuntime
from repro.procfs.filesystem import ProcFS
from repro.procfs.parsers import (
    parse_meminfo,
    parse_pid_io,
    parse_pid_stat,
    parse_pid_status,
    parse_proc_stat,
)
from repro.topology.cpuset import CpuSet

__all__ = ["ZeroSum"]

_GPU_COLUMNS = ("tick",) + METRIC_ORDER


class ZeroSum:
    """User-space monitor attached to one (simulated) process."""

    def __init__(
        self,
        kernel: SimKernel,
        process: SimProcess,
        config: Optional[ZeroSumConfig] = None,
        gpus: Optional[list] = None,
        comm: Optional[RankComm] = None,
        omp: Optional[OpenMPRuntime] = None,
        stream: Optional["SampleStream"] = None,
    ):
        self.kernel = kernel
        self.process = process
        self.config = config or ZeroSumConfig()
        self.procfs = ProcFS(kernel, process.node, self_pid=process.pid)
        self.start_tick = kernel.now
        self.end_tick: Optional[int] = None

        # phase 1: initial configuration detection
        self.initial: ProcessConfig = detect_configuration(
            self.procfs, process.pid, machine=process.node.machine
        )

        # GPU SMI session over the devices visible to this rank,
        # dispatched to the vendor-appropriate backend (§3.4)
        self.smi: Optional[SmiBackend] = None
        if gpus and self.config.collect_gpu:
            self.smi = make_smi(gpus)

        # MPI point-to-point interposition
        self.comm = comm
        self.recorder: Optional[P2PRecorder] = None
        if comm is not None and self.config.collect_mpi:
            self.recorder = P2PRecorder(comm.Get_size())
            self.recorder.attach(comm)

        # OpenMP thread identification: OMPT callback (5.1+) or the
        # pre-5.1 probe that queries the team directly (§3.1.2)
        self._openmp_tids: set[int] = set()
        self._omp = omp
        if omp is not None and self.config.openmp_detection == "ompt":
            self.register_openmp(omp)

        # sample storage
        self.lwp_series: dict[int, SeriesBuffer] = {}
        self.lwp_affinity: dict[int, CpuSet] = {}
        self.lwp_names: dict[int, str] = {}
        self.hwt_series: dict[int, SeriesBuffer] = {}
        self.gpu_series: dict[int, SeriesBuffer] = {}
        self.mem_series = SeriesBuffer(MEM_COLUMNS)
        self.samples_taken = 0
        self._last_thread_count = 0
        #: optional live export bus (the LDMS/TAU seam, §6)
        self.stream = stream
        self._prev_sample_tick = self.start_tick
        self._prev_totals: dict[int, float] = {}
        self.heartbeats: list[str] = []
        self.crash_reports: list[str] = []

        if self.config.signal_handler:
            kernel.on_crash.append(self._on_crash)

        # progress / deadlock tracking
        self.progress = ProgressTracker(threshold=self.config.deadlock_after)

        # the asynchronous monitoring thread
        self.monitor_lwp: LWP = kernel.spawn_thread(
            process,
            self._monitor_behavior(),
            name="zerosum",
            affinity=self._monitor_affinity(),
            roles={ThreadRole.ZEROSUM},
            daemon=True,
        )
        self.progress.ignore_tids.add(self.monitor_lwp.tid)
        self._finalized = False

    # ------------------------------------------------------------------
    def _monitor_affinity(self) -> CpuSet:
        cfg = self.config.monitor_cpu
        cpuset = self.process.cpuset
        if cfg is None:
            return cpuset
        if cfg == "last":
            return CpuSet([cpuset.last()])
        if cfg == "first":
            return CpuSet([cpuset.first()])
        if isinstance(cfg, int):
            if cfg not in self.process.node.machine.cpuset():
                raise MonitorError(f"monitor_cpu {cfg} not on this node")
            return CpuSet([cfg])
        raise MonitorError(f"bad monitor_cpu {cfg!r}")

    def probe_openmp_team(self) -> None:
        """Pre-OMPT fallback: identify the team by asking the runtime
        (the simulated analogue of launching a probe parallel region
        and collecting the member LWP ids, §3.1.2)."""
        if self._omp is None or not self._omp._initialized:
            return
        for worker in self._omp.workers:
            self._openmp_tids.add(worker.tid)
        self._openmp_tids.add(self.process.pid)

    def register_openmp(self, omp: OpenMPRuntime) -> None:
        """Register the OMPT thread-begin callback (§3.1.2)."""

        def on_thread_begin(thread_type: OmptThreadType, lwp: LWP) -> None:
            self._openmp_tids.add(lwp.tid)

        omp.ompt.set_callback(OmptEvent.THREAD_BEGIN, on_thread_begin)

    # ------------------------------------------------------------------
    def _monitor_behavior(self) -> Behavior:
        period = max(1, round(self.config.period_seconds * self.kernel.clock.hz))
        while True:
            yield Sleep(period)
            yield Call(lambda k, l: self.take_sample())
            cost = (
                self.config.sample_cost_jiffies
                + self.config.sample_cost_per_thread * self._last_thread_count
            )
            if cost > 0:
                yield Compute(cost, user_frac=self.config.sample_user_frac)

    # ------------------------------------------------------------------
    def classify(self, tid: int) -> str:
        """Thread type label, as in the paper's LWP table."""
        roles = []
        if tid == self.process.pid:
            roles.append("Main")
        if tid == self.monitor_lwp.tid:
            roles.append("ZeroSum")
        if tid in self._openmp_tids:
            roles.append("OpenMP")
        if not roles:
            roles.append("Other")
        return ", ".join(roles)

    # ------------------------------------------------------------------
    def take_sample(self) -> None:
        """One periodic observation (runs inside the monitor thread)."""
        tick = self.kernel.now
        pid = self.process.pid
        snapshots: list[ThreadSnapshot] = []

        # pre-5.1 OpenMP runtimes: probe the team like the paper's
        # fallback parallel region does
        if self._omp is not None and self.config.openmp_detection == "probe":
            self.probe_openmp_team()

        # -- LWPs: /proc/<pid>/task/<tid>/{stat,status} ----------------
        try:
            tids = [int(t) for t in self.procfs.listdir(f"/proc/{pid}/task")]
        except Exception:
            tids = []
        for tid in tids:
            try:
                stat = parse_pid_stat(
                    self.procfs.read(f"/proc/{pid}/task/{tid}/stat")
                )
                status = parse_pid_status(
                    self.procfs.read(f"/proc/{pid}/task/{tid}/status")
                )
            except Exception:
                continue  # transient thread died mid-sample
            series = self.lwp_series.get(tid)
            if series is None:
                series = SeriesBuffer(LWP_COLUMNS)
                self.lwp_series[tid] = series
            if self.config.keep_series or len(series) == 0:
                series.append(
                    (
                        tick,
                        state_code(stat.state),
                        stat.utime,
                        stat.stime,
                        status.nonvoluntary_ctxt_switches,
                        status.voluntary_ctxt_switches,
                        stat.minflt,
                        stat.majflt,
                        stat.processor,
                    )
                )
            else:  # summary mode: keep only the latest row
                series._data[0] = (
                    tick,
                    state_code(stat.state),
                    stat.utime,
                    stat.stime,
                    status.nonvoluntary_ctxt_switches,
                    status.voluntary_ctxt_switches,
                    stat.minflt,
                    stat.majflt,
                    stat.processor,
                )
            # affinity may change after creation: re-query every period
            self.lwp_affinity[tid] = status.cpus_allowed
            self.lwp_names[tid] = stat.comm
            snapshots.append(
                ThreadSnapshot(
                    tid=tid,
                    state=stat.state,
                    total_jiffies=stat.utime + stat.stime,
                )
            )

        # -- HWTs: /proc/stat restricted to the process affinity --------
        if self.config.collect_hwt:
            cpu_times = parse_proc_stat(self.procfs.read("/proc/stat"))
            for cpu in self.initial.cpus_allowed:
                times = cpu_times.get(cpu)
                if times is None:
                    continue
                series = self.hwt_series.get(cpu)
                if series is None:
                    series = SeriesBuffer(HWT_COLUMNS)
                    self.hwt_series[cpu] = series
                series.append(
                    (tick, times.user, times.system, times.idle, times.iowait)
                )

        # -- memory: /proc/meminfo + /proc/<pid>/status ------------------
        if self.config.collect_memory:
            meminfo = parse_meminfo(self.procfs.read("/proc/meminfo"))
            self_status = parse_pid_status(self.procfs.read(f"/proc/{pid}/status"))
            try:
                io = parse_pid_io(self.procfs.read(f"/proc/{pid}/io"))
                io_read, io_write = io.read_bytes // 1024, io.write_bytes // 1024
            except Exception:
                io_read = io_write = 0
            self.mem_series.append(
                (
                    tick,
                    meminfo.get("MemTotal", 0),
                    meminfo.get("MemFree", 0),
                    meminfo.get("MemAvailable", 0),
                    self_status.vm_rss_kib,
                    io_read,
                    io_write,
                )
            )

        # -- GPUs: vendor SMI --------------------------------------------
        if self.smi is not None:
            for visible in range(self.smi.num_devices()):
                sample = self.smi.sample(visible, tick)
                series = self.gpu_series.get(visible)
                if series is None:
                    series = SeriesBuffer(_GPU_COLUMNS)
                    self.gpu_series[visible] = series
                series.append(
                    (tick,) + tuple(getattr(sample, m) for m in METRIC_ORDER)
                )

        self.samples_taken += 1
        self._last_thread_count = len(snapshots)

        # -- heartbeat + deadlock suspicion --------------------------------
        if (
            self.config.heartbeat_every
            and self.samples_taken % self.config.heartbeat_every == 0
        ):
            self.heartbeats.append(
                f"[zerosum] t={tick / self.kernel.clock.hz:.1f}s "
                f"pid={pid} viable, {len(snapshots)} threads"
            )
        # a process whose main thread returned is finished, not
        # deadlocked (daemon helper threads may outlive it)
        if self.config.deadlock_after and self.process.main_thread.alive:
            flagged = self.progress.observe(snapshots)
            if flagged and self.config.deadlock_action == "terminate" \
                    and self.process.alive:
                self.heartbeats.append(
                    f"[zerosum] t={tick / self.kernel.clock.hz:.1f}s "
                    f"pid={pid} TERMINATING: {self.progress.describe()}"
                )
                self.kernel.kill_process(self.process, exit_code=124)

        # -- live streaming (LDMS/TAU seam, §6) -----------------------------
        if self.stream is not None:
            self.stream.publish(self._make_event(tick, snapshots))
        self._prev_sample_tick = tick
        for snap in snapshots:
            self._prev_totals[snap.tid] = snap.total_jiffies

    # ------------------------------------------------------------------
    def _make_event(self, tick: int, snapshots) -> "SampleEvent":
        from repro.core.stream import SampleEvent

        interval = max(1, tick - self._prev_sample_tick)
        app = [s for s in snapshots if s.tid != self.monitor_lwp.tid]
        deltas = [
            s.total_jiffies - self._prev_totals.get(s.tid, 0.0) for s in app
        ]
        busy_threads = [d for d in deltas if d > 0] or deltas
        busy_pct = (
            100.0 * sum(busy_threads) / (interval * len(busy_threads))
            if busy_threads else 0.0
        )
        gpu_busy = -1.0
        if self.gpu_series:
            vals = [
                float(series.column("busy_percent")[-1])
                for series in self.gpu_series.values()
                if len(series)
            ]
            if vals:
                gpu_busy = sum(vals) / len(vals)
        rss = mem_avail = 0.0
        if len(self.mem_series):
            rss = self.mem_series.last("rss_kib")
            mem_avail = self.mem_series.last("mem_available_kib")
        return SampleEvent(
            tick=tick,
            seconds=tick / self.kernel.clock.hz,
            hostname=self.process.node.hostname,
            pid=self.process.pid,
            rank=self.process.rank,
            threads=len(snapshots),
            runnable_threads=sum(1 for s in snapshots if s.state == "R"),
            busy_pct=busy_pct,
            rss_kib=rss,
            mem_available_kib=mem_avail,
            gpu_busy_pct=gpu_busy,
            deadlock_suspected=self.progress.deadlock_suspected,
        )

    # ------------------------------------------------------------------
    def _on_crash(self, kernel: SimKernel, lwp: LWP, exc: BaseException) -> None:
        if lwp.process is not self.process:
            return
        tb = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        )
        self.crash_reports.append(
            f"*** ZeroSum abnormal-exit handler: LWP {lwp.tid} "
            f"({self.classify(lwp.tid)}) died at t="
            f"{kernel.now / kernel.clock.hz:.2f}s ***\n{tb}"
        )

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Take the final sample and close the observation window."""
        if self._finalized:
            return
        self.take_sample()
        self.end_tick = self.kernel.now
        if self.recorder is not None:
            self.recorder.detach_all()
        self._finalized = True

    # -- derived quantities --------------------------------------------------
    @property
    def duration_ticks(self) -> int:
        end = self.end_tick if self.end_tick is not None else self.kernel.now
        return max(1, end - self.start_tick)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ticks / self.kernel.clock.hz

    def observed_tids(self) -> list[int]:
        """Every thread id the monitor ever sampled, sorted."""
        return sorted(self.lwp_series)

    def lwp_last(self, tid: int, column: str) -> float:
        """Latest sampled value of one LWP column."""
        return self.lwp_series[tid].last(column)

    def deadlock_suspected(self) -> bool:
        """Whether the progress tracker has flagged a deadlock."""
        return self.progress.deadlock_suspected
