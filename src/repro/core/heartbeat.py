"""Progress detection and deadlock suspicion (§3.3).

The paper's prototype periodically writes a heartbeat to stdout and
observes that the LWP state plus the idle/user/system counters would
suffice to "detect a deadlock condition and possibly terminate the
application to prevent wasting of allocation resources", leaving that
as future work.  We implement it: :class:`ProgressTracker` watches the
per-sample deltas of every application thread; if every thread is
blocked and no CPU time accrues for N consecutive samples, a deadlock
is flagged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.collect.faults import DegradationLedger
    from repro.detect.findings import AlertLedger

__all__ = [
    "ThreadSnapshot",
    "ProgressTracker",
    "HeartbeatWriter",
    "heartbeat_line",
]


def heartbeat_line(
    *,
    seconds: float,
    pid: int,
    threads: int,
    ledger: Optional["DegradationLedger"] = None,
    last_sample_age_s: Optional[float] = None,
    alerts: Optional["AlertLedger"] = None,
) -> str:
    """One heartbeat: liveness, thread count, and any degradation.

    A degraded pipeline heartbeats *louder*, not silent — the line
    names what is disabled or dropping rows so an operator watching
    stdout learns why a column will be missing before the final
    report.

    ``last_sample_age_s`` is the monotonic-clock age of the newest
    completed sample.  With it in every line, an external watchdog can
    detect a stalled sampler from the heartbeat file alone: a healthy
    monitor writes small ages, a wedged one writes growing ages (or
    stops writing, which the file's mtime betrays either way).

    ``alerts`` is the online detector's ledger; when it holds findings
    the line carries a per-code tally so the heartbeat file alone
    shows what the detector has seen and how often.
    """
    line = f"[zerosum] t={seconds:.1f}s pid={pid} viable, {threads} threads"
    if last_sample_age_s is not None:
        line += f" last_sample_age={last_sample_age_s:.1f}s"
    if ledger is not None and ledger.degraded:
        line += f" [degraded: {ledger.degraded_summary()}]"
    if alerts is not None and len(alerts):
        line += f" alerts=[{alerts.heartbeat_summary()}]"
    return line


class HeartbeatWriter:
    """Append-only heartbeat file with opt-in fsync-per-line.

    The default flushes each line to the OS (survives the process
    dying); ``fsync=True`` additionally forces it to stable storage so
    a node-level watchdog never reads a stale-but-acknowledged
    heartbeat after power loss.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False):
        self.path = Path(path)
        self.fsync = fsync
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, line: str) -> None:
        """Append one heartbeat line, flushed (and fsynced if opted in)."""
        self._file.write(line.rstrip("\n") + "\n")
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def flush(self) -> None:
        """Force everything written so far to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        """Close the file; idempotent."""
        if not self._file.closed:
            self._file.close()


@dataclass(frozen=True)
class ThreadSnapshot:
    """The per-thread facts one sample contributes to progress tracking."""

    tid: int
    state: str  # /proc state letter
    total_jiffies: float  # utime + stime, cumulative


@dataclass
class ProgressTracker:
    """Stall counting over successive samples.

    ``threshold`` consecutive samples with zero progress and no
    runnable thread flag a suspected deadlock.  ``ignore_tids`` holds
    the monitor's own thread (it is always making progress) and other
    helper threads that legitimately idle.
    """

    threshold: int
    ignore_tids: set[int] = field(default_factory=set)
    stalled_samples: int = 0
    deadlock_sample: Optional[int] = None
    _last_totals: dict[int, float] = field(default_factory=dict)
    _samples_seen: int = 0

    def observe(self, snapshots: list[ThreadSnapshot]) -> bool:
        """Feed one sample; returns True if a deadlock is (now) flagged."""
        self._samples_seen += 1
        watched = [s for s in snapshots if s.tid not in self.ignore_tids]
        if not watched:
            return False

        progressed = False
        any_runnable = False
        for snap in watched:
            prev = self._last_totals.get(snap.tid)
            if prev is None or snap.total_jiffies > prev + 1e-9:
                progressed = True
            if snap.state == "R":
                any_runnable = True
            self._last_totals[snap.tid] = snap.total_jiffies

        if progressed or any_runnable:
            self.stalled_samples = 0
            return False

        self.stalled_samples += 1
        if (
            self.threshold > 0
            and self.stalled_samples >= self.threshold
            and self.deadlock_sample is None
        ):
            self.deadlock_sample = self._samples_seen
        return self.deadlock_sample is not None

    @property
    def deadlock_suspected(self) -> bool:
        return self.deadlock_sample is not None

    def describe(self) -> str:
        """Human-readable progress verdict."""
        if not self.deadlock_suspected:
            return "progress normal"
        return (
            f"suspected deadlock: no thread progress for "
            f"{self.stalled_samples} consecutive samples "
            f"(first flagged at sample {self.deadlock_sample})"
        )
