"""Contention report and misconfiguration detection (§3.2, §3.5).

The paper's §3.5 reads contention off the utilization data (high
non-voluntary context switches, high system-call time, overlapping
affinity lists, memory pressure) and §3.2 names automatic
misconfiguration detection as future work.  Both are implemented here:
:func:`analyze` inspects a finalized monitor and produces a list of
typed findings with severities, covering

* **oversubscription** — multiple busy LWPs sharing hardware threads
  (the Table 1 pathology);
* **undersubscription** — allocated CPUs sitting idle (the Listing 2
  observation that half the cores did nothing);
* **affinity overlap** — bound LWPs whose masks intersect;
* **forced time-slicing** — high non-voluntary context-switch rates;
* **GPU locality mismatch** — a rank driving a GPU that is not
  attached to its NUMA domain;
* **NUMA spanning** — a thread's affinity mask crossing NUMA domains;
* **memory pressure / OOM** — low MemAvailable or recorded OOM kills,
  distinguishing application RSS growth from external consumers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.monitor import ZeroSum
from repro.core.reports import UtilizationReport, build_report
from repro.topology.cpuset import CpuSet

__all__ = ["Severity", "Finding", "ContentionReport", "analyze"]


class Severity(enum.Enum):
    """How urgent a finding is."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Finding:
    """One detected issue."""

    code: str
    severity: Severity
    message: str

    def render(self) -> str:
        """Single-line gauge form."""
        return f"[{self.severity.value.upper():8s}] {self.code}: {self.message}"


@dataclass
class ContentionReport:
    """All findings for one rank, plus the underlying report."""

    rank: int | None
    findings: list[Finding] = field(default_factory=list)

    def by_code(self, code: str) -> list[Finding]:
        """Findings of one kind."""
        return [f for f in self.findings if f.code == code]

    def worst(self) -> Severity:
        """Highest severity present (INFO when clean)."""
        order = [Severity.INFO, Severity.WARNING, Severity.CRITICAL]
        worst = Severity.INFO
        for f in self.findings:
            if order.index(f.severity) > order.index(worst):
                worst = f.severity
        return worst

    def render(self) -> str:
        """Warning-lights style listing of every finding."""
        head = f"Contention report (rank {self.rank}):"
        if not self.findings:
            return head + "\n  no issues detected\n"
        return head + "\n" + "\n".join(
            "  " + f.render() for f in self.findings
        ) + "\n"


#: a thread busier than this fraction of its window counts as "busy"
#: (time-sliced threads may each see only a small share of one core,
#: e.g. ~11 % for 9 threads on one core, so the bar must be low)
_BUSY_PCT = 5.0
#: nv_ctx per observed second above this is "forced time-slicing"
_NVCTX_RATE = 2.5
#: a CPU with idle above this is "unused"
_IDLE_PCT = 95.0
#: MemAvailable below this fraction of MemTotal is pressure ("will I
#: soon run out of a limited resource?", §2)
_MEM_PRESSURE = 0.10


def _is_bound(cpus: CpuSet, node_cpus: CpuSet) -> bool:
    """Unbound helper threads carry the whole node's usable mask."""
    return len(cpus) > 0 and len(cpus) < max(1, len(node_cpus) // 2)


def analyze(monitor: ZeroSum, report: UtilizationReport | None = None) -> ContentionReport:
    """Derive findings from a finalized monitor."""
    report = report or build_report(monitor)
    out = ContentionReport(rank=report.rank)
    node_cpus = monitor.process.node.machine.cpuset()
    duration_s = max(monitor.duration_seconds, 1e-9)

    busy_rows = [
        r for r in report.lwp_rows if r.utime_pct + r.stime_pct >= _BUSY_PCT
    ]
    bound_busy = [r for r in busy_rows if _is_bound(r.cpus, node_cpus)]

    # oversubscription: more busy bound threads than distinct CPUs,
    # with the shared CPUs effectively saturated
    cpus_used: CpuSet = CpuSet()
    demand_pct = 0.0
    for row in bound_busy:
        cpus_used = cpus_used | row.cpus
        demand_pct += row.utime_pct + row.stime_pct
    saturated = bool(cpus_used) and demand_pct >= 70.0 * len(cpus_used)
    if bound_busy and len(bound_busy) > len(cpus_used) and saturated:
        out.findings.append(
            Finding(
                "oversubscription",
                Severity.CRITICAL,
                f"{len(bound_busy)} busy threads share only "
                f"{len(cpus_used)} hardware thread(s) "
                f"({format_over(bound_busy, cpus_used)})",
            )
        )

    # affinity overlap between *pinned* busy threads: threads bound to
    # one or two CPUs that are forced to share them.  Unbound threads
    # (affinity == whole process cpuset) are the scheduler's problem,
    # not a pinning mistake, so they are excluded here.
    pinned = [r for r in busy_rows if 0 < len(r.cpus) <= 2]
    per_cpu: dict[int, list[int]] = {}
    for row in pinned:
        for cpu in row.cpus:
            per_cpu.setdefault(cpu, []).append(row.tid)
    for cpu, tids in sorted(per_cpu.items()):
        if len(tids) > 1:
            out.findings.append(
                Finding(
                    "affinity-overlap",
                    Severity.WARNING,
                    f"{len(tids)} busy threads are pinned to CPU {cpu}: "
                    f"LWPs {sorted(tids)}",
                )
            )

    # forced time-slicing (high nv_ctx rate)
    for row in report.lwp_rows:
        rate = row.nv_ctx / duration_s
        if rate > _NVCTX_RATE:
            out.findings.append(
                Finding(
                    "time-slicing",
                    Severity.WARNING,
                    f"LWP {row.tid} ({row.kind}) suffered "
                    f"{row.nv_ctx} non-voluntary context switches "
                    f"({rate:.1f}/s): CPU over-commitment",
                )
            )

    # undersubscription: allocated CPUs that stayed idle
    idle = report.idle_cpus(_IDLE_PCT)
    if idle and len(idle) < len(report.hwt_rows):
        out.findings.append(
            Finding(
                "undersubscription",
                Severity.WARNING,
                f"{len(idle)} of {len(report.hwt_rows)} allocated CPUs "
                f"stayed >= {_IDLE_PCT:.0f}% idle: {idle}",
            )
        )
    elif idle and len(idle) == len(report.hwt_rows):
        out.findings.append(
            Finding(
                "no-utilization",
                Severity.CRITICAL,
                "every allocated CPU stayed idle — wrong binding or hung job?",
            )
        )

    # GPU locality vs --gpu-bind=closest expectations
    machine = monitor.process.node.machine
    if monitor.smi is not None and len(machine.numa_domains()) > 1:
        rank_numas = {
            machine.numa_of(cpu).os_index
            for cpu in monitor.initial.cpus_allowed
            if machine.numa_of(cpu) is not None
        }
        for visible in range(monitor.smi.num_devices()):
            dev = monitor.smi.device(visible)
            if dev.info.numa not in rank_numas:
                out.findings.append(
                    Finding(
                        "gpu-locality",
                        Severity.WARNING,
                        f"GPU {dev.info.physical_index} (visible {visible}) "
                        f"is on NUMA {dev.info.numa} but the rank runs on "
                        f"NUMA {sorted(rank_numas)}",
                    )
                )

    # threads spanning NUMA domains
    if len(machine.numa_domains()) > 1:
        for row in report.lwp_rows:
            if not _is_bound(row.cpus, node_cpus):
                continue
            domains = {
                machine.numa_of(cpu).os_index
                for cpu in row.cpus
                if machine.numa_of(cpu) is not None
            }
            if len(domains) > 1:
                out.findings.append(
                    Finding(
                        "numa-span",
                        Severity.INFO,
                        f"LWP {row.tid} affinity spans NUMA domains "
                        f"{sorted(domains)}",
                    )
                )

    # GPU memory exhaustion: §3.5's periodic used/free VRAM check
    for visible in sorted(monitor.gpu_series):
        series = monitor.gpu_series[visible]
        if len(series) == 0 or monitor.smi is None:
            continue
        capacity = monitor.smi.device(visible).info.memory_bytes
        peak = float(series.column("used_vram_bytes").max())
        if capacity > 0 and peak > 0.9 * capacity:
            out.findings.append(
                Finding(
                    "gpu-memory-pressure",
                    Severity.CRITICAL,
                    f"GPU {visible} VRAM peaked at "
                    f"{100 * peak / capacity:.1f}% of "
                    f"{capacity // (1024**2)} MiB: the next allocation "
                    f"may fail",
                )
            )

    # I/O-bound cores: allocated CPUs spending their time in iowait
    for cpu in sorted(monitor.hwt_series):
        series = monitor.hwt_series[cpu]
        if "iowait" not in series.columns or len(series) == 0:
            continue
        iowait_pct = 100.0 * series.last("iowait") / max(1, duration_s * 100)
        if iowait_pct > 20.0:
            out.findings.append(
                Finding(
                    "io-bound",
                    Severity.WARNING,
                    f"CPU {cpu} spent {iowait_pct:.1f}% of the run waiting "
                    f"on file I/O: the filesystem, not the CPU, is the "
                    f"bottleneck",
                )
            )

    # memory pressure / OOM
    if len(monitor.mem_series):
        import numpy as np

        total = monitor.mem_series.last("mem_total_kib")
        avail_col = monitor.mem_series.column("mem_available_kib")
        avail = float(avail_col.min())
        if total > 0 and avail < _MEM_PRESSURE * total:
            # blame assessed at the moment of peak pressure, since a
            # dead (reaped) process reports zero RSS afterwards
            at_peak = int(np.argmin(avail_col))
            rss = float(monitor.mem_series.column("rss_kib")[at_peak])
            blame = (
                "this process's RSS"
                if rss > 0.5 * (total - avail)
                else "another consumer on the node"
            )
            out.findings.append(
                Finding(
                    "memory-pressure",
                    Severity.CRITICAL,
                    f"MemAvailable dropped to {avail:.0f} kB "
                    f"({100 * avail / total:.1f}% of MemTotal); "
                    f"dominant consumer appears to be {blame}",
                )
            )
    for tick, pid in monitor.process.node.memory.oom_events:
        out.findings.append(
            Finding(
                "oom",
                Severity.CRITICAL,
                f"process {pid} was OOM-killed at t={tick / 100:.2f}s",
            )
        )

    return out


def format_over(rows, cpus_used: CpuSet) -> str:
    tids = ",".join(str(r.tid) for r in rows[:6])
    more = "..." if len(rows) > 6 else ""
    return f"LWPs {tids}{more} on CPUs [{cpus_used.to_list()}]"
