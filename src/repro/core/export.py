"""Data exportation (§3.6): per-rank logs and CSV time series.

Every monitored process can write a log containing the same summary
rank 0 prints, followed by a detailed CSV dump of every sample — LWP
state, faults, context switches and last CPU; HWT jiffies; memory; and
GPU sensors — enabling the time-series analyses of Figures 6 and 7.
Sinks are pluggable so the data can also be streamed to another tool
(the LDMS/TAU integration direction of §6).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Mapping, Protocol

from repro.core.monitor import ZeroSum
from repro.core.records import SeriesBuffer
from repro.core.reports import build_report

__all__ = [
    "ExportSink",
    "MemorySink",
    "FileSink",
    "write_log",
    "series_csv",
    "lwp_csv",
    "hwt_csv",
    "gpu_csv",
    "memory_csv",
]


class ExportSink(Protocol):
    """Anything that accepts named text documents."""

    def write(self, name: str, content: str) -> None: ...


class MemorySink:
    """Collects documents in a dict (tests, streaming integrations)."""

    def __init__(self) -> None:
        self.documents: dict[str, str] = {}

    def write(self, name: str, content: str) -> None:
        """Store the document in memory."""
        self.documents[name] = content


class FileSink:
    """Writes documents under a directory (the per-rank log files)."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def write(self, name: str, content: str) -> None:
        """Write the document under the sink directory."""
        (self.directory / name).write_text(content)


def series_csv(series_map: Mapping[int, SeriesBuffer], key_name: str) -> str:
    """Concatenate per-key series into one CSV with a leading key column.

    Shared by the simulated and live exporters so both emit the exact
    section layout the replay driver and log parser expect.
    """
    out = io.StringIO()
    first = True
    for key in sorted(series_map):
        text = series_map[key].to_csv(prefix_cols={key_name: key})
        out.write(text if first else text.split("\n", 1)[1])
        first = False
    return out.getvalue()


def lwp_csv(monitor: ZeroSum) -> str:
    """All LWP samples as one CSV (tid as a leading column)."""
    return series_csv(monitor.lwp_series, "tid")


def hwt_csv(monitor: ZeroSum) -> str:
    """All HWT samples as one CSV (cpu as a leading column)."""
    return series_csv(monitor.hwt_series, "cpu")


def gpu_csv(monitor: ZeroSum) -> str:
    """All GPU samples as one CSV (visible device as a leading column)."""
    return series_csv(monitor.gpu_series, "gpu")


def memory_csv(monitor: ZeroSum) -> str:
    """The memory/I-O sample series as CSV."""
    return monitor.mem_series.to_csv()


def write_log(monitor: ZeroSum, sink: ExportSink) -> str:
    """Write one rank's full log; returns the log document name.

    The log contains the startup banner, the topology, the utilization
    report, heartbeats, crash reports, and the CSV sections — the
    "detailed dump of all data collected" of §3.6.
    """
    rank = monitor.process.rank
    name = f"zerosum.{rank if rank is not None else monitor.process.pid}.log"
    report = build_report(monitor)
    parts = []
    parts.extend(monitor.initial.summary_lines())
    parts.append("")
    if monitor.initial.topology_text:
        parts.append(monitor.initial.topology_text)
        parts.append("")
    parts.append(report.render())
    if monitor.heartbeats:
        parts.append("Heartbeats:")
        parts.extend(monitor.heartbeats)
        parts.append("")
    if monitor.crash_reports:
        parts.extend(monitor.crash_reports)
        parts.append("")
    parts.append("== LWP samples (CSV) ==")
    parts.append(lwp_csv(monitor))
    parts.append("== HWT samples (CSV) ==")
    parts.append(hwt_csv(monitor))
    if monitor.gpu_series:
        parts.append("== GPU samples (CSV) ==")
        parts.append(gpu_csv(monitor))
    parts.append("== memory samples (CSV) ==")
    parts.append(memory_csv(monitor))
    if monitor.recorder is not None:
        parts.append("== MPI point-to-point (CSV) ==")
        from repro.core.heatmap import CommMatrix

        mat = CommMatrix(
            bytes=monitor.recorder.bytes, messages=monitor.recorder.messages
        )
        parts.append(mat.to_csv())
    sink.write(name, "\n".join(parts))
    return name
