"""MPI point-to-point heatmap assembly (§3.1.3, Figure 5).

Each rank's ZeroSum instance records its own send matrix; this module
merges the per-rank matrices into the global bytes heatmap, bins it
for display, renders a text heatmap, and quantifies structure
(diagonal dominance, top talker pairs).  It also implements the rank
reordering suggestion the paper floats ("guide the logical MPI process
ordering ... to exploit lower latency communication between ranks
executing on the same node") as a greedy locality optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import ZeroSum
from repro.errors import MonitorError

__all__ = ["CommMatrix", "merge_monitors"]

_SHADES = " .:-=+*#%@"


@dataclass
class CommMatrix:
    """The global (sender, receiver) → bytes matrix."""

    bytes: np.ndarray  # (n, n) int64
    messages: np.ndarray  # (n, n) int64

    def __post_init__(self) -> None:
        if self.bytes.ndim != 2 or self.bytes.shape[0] != self.bytes.shape[1]:
            raise MonitorError("communication matrix must be square")

    @property
    def size(self) -> int:
        return self.bytes.shape[0]

    @classmethod
    def zeros(cls, n: int) -> "CommMatrix":
        return cls(
            bytes=np.zeros((n, n), dtype=np.int64),
            messages=np.zeros((n, n), dtype=np.int64),
        )

    def add(self, other: "CommMatrix") -> None:
        """Accumulate another matrix of the same size in place."""
        if other.size != self.size:
            raise MonitorError("matrix size mismatch")
        self.bytes += other.bytes
        self.messages += other.messages

    # -- analysis -----------------------------------------------------------
    def total_bytes(self) -> int:
        """Sum of all point-to-point bytes in the matrix."""
        return int(self.bytes.sum())

    def binned(self, bins: int) -> np.ndarray:
        """Aggregate into a bins × bins matrix for large rank counts."""
        n = self.size
        if bins <= 0 or bins > n:
            raise MonitorError("bins must be in [1, size]")
        edges = np.linspace(0, n, bins + 1).astype(int)
        out = np.zeros((bins, bins), dtype=np.int64)
        for i in range(bins):
            for j in range(bins):
                out[i, j] = self.bytes[
                    edges[i] : edges[i + 1], edges[j] : edges[j + 1]
                ].sum()
        return out

    def diagonal_dominance(self, band: int = 1) -> float:
        """Fraction of traffic within ``band`` of the (ring) diagonal."""
        total = self.bytes.sum()
        if total == 0:
            return 0.0
        n = self.size
        idx = np.arange(n)
        dist = np.abs(idx[None, :] - idx[:, None])
        dist = np.minimum(dist, n - dist)
        return float(self.bytes[dist <= band].sum() / total)

    def top_talkers(self, k: int = 5) -> list[tuple[int, int, int]]:
        """The k heaviest (src, dst, bytes) pairs."""
        flat = self.bytes.flatten()
        order = np.argsort(flat)[::-1][:k]
        n = self.size
        return [
            (int(i // n), int(i % n), int(flat[i])) for i in order if flat[i] > 0
        ]

    def render(self, bins: int | None = None, width: int = 64) -> str:
        """Text heatmap: darker character = more bytes (log scale)."""
        bins = min(self.size, bins or min(self.size, width))
        mat = self.binned(bins).astype(np.float64)
        peak = mat.max()
        lines = [f"MPI point-to-point heatmap ({self.size} ranks, "
                 f"{self.total_bytes()} bytes total)"]
        if peak <= 0:
            lines.append("(no point-to-point traffic recorded)")
            return "\n".join(lines) + "\n"
        scaled = np.zeros_like(mat)
        nz = mat > 0
        scaled[nz] = 1.0 + np.log10(mat[nz] / peak + 1e-12)
        scaled = np.clip(scaled / max(scaled.max(), 1e-12), 0.0, 1.0)
        for i in range(bins):
            row = "".join(
                _SHADES[int(round(v * (len(_SHADES) - 1)))] for v in scaled[i]
            )
            lines.append(row)
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        """Sparse CSV of nonzero (src, dst, bytes, messages) entries."""
        lines = ["src,dst,bytes,messages"]
        src, dst = np.nonzero(self.bytes)
        for i, j in zip(src.tolist(), dst.tolist()):
            lines.append(
                f"{i},{j},{int(self.bytes[i, j])},{int(self.messages[i, j])}"
            )
        return "\n".join(lines) + "\n"


def merge_monitors(monitors: list[ZeroSum]) -> CommMatrix:
    """Merge per-rank recorders into the global matrix (post-processing
    of the per-rank logs, as the paper describes for Figure 5)."""
    sized = [m.recorder for m in monitors if m.recorder is not None]
    if not sized:
        raise MonitorError("no monitor carries MPI point-to-point data")
    n = sized[0].world_size
    out = CommMatrix.zeros(n)
    for rec in sized:
        if rec.world_size != n:
            raise MonitorError("monitors disagree on world size")
        out.bytes += rec.bytes
        out.messages += rec.messages
    return out
