"""``zerosum-sim``: run the paper's experiments from the command line.

Subcommands:

* ``topology <machine>`` — print the lstopo-style tree (Listing 1);
* ``run "<srun command line>"`` — simulate a monitored miniQMC job
  and print rank 0's utilization report (Listing 2 / Tables 1-3);
* ``heatmap --ranks N`` — run the PIC proxy and print the Figure 5
  heatmap;
* ``live --seconds S`` — monitor this very process via the real /proc
  (``--journal PATH`` makes the run crash-durable);
* ``recover <journal>`` — post-mortem: rebuild the utilization +
  degradation report (and optional log/archive exports) from the
  spill journal of a run that was killed mid-flight.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import build_cluster_view
from repro.apps import MiniQmcConfig, PicConfig, miniqmc_app, pic_app
from repro.core import ZeroSumConfig, zerosum_mpi
from repro.launch import SrunOptions, launch_job
from repro.topology import MACHINE_FACTORIES, frontier_node, render_lstopo

__all__ = ["main"]


def _cmd_topology(args: argparse.Namespace) -> int:
    factory = MACHINE_FACTORIES.get(args.machine)
    if factory is None:
        print(f"unknown machine {args.machine!r}; choose from "
              f"{sorted(MACHINE_FACTORIES)}", file=sys.stderr)
        return 2
    print(render_lstopo(factory(), show_gpus=args.gpus))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    opts = SrunOptions.parse(args.cmdline)
    app = miniqmc_app(
        MiniQmcConfig(
            blocks=args.blocks,
            block_jiffies=args.block_jiffies,
            jitter=0.01,
            seed=args.seed,
            offload=args.offload,
        )
    )
    factory = MACHINE_FACTORIES[args.machine]
    machines = [
        factory(name=f"{args.machine}{i:05d}") for i in range(args.nodes)
    ]
    from repro.launch import ChaosPlan, parse_chaos_spec

    chaos = None
    if args.chaos:
        chaos = parse_chaos_spec(args.chaos)
    elif args.chaos_seed is not None:
        chaos = ChaosPlan.seeded(
            args.chaos_seed, shards=max(2, args.workers), epochs=16
        )
    job_kwargs = {}
    if args.no_self_heal:
        job_kwargs["recovery"] = None  # else: launch_sharded's default
    step = launch_job(
        machines,
        opts,
        app,
        monitor_factory=zerosum_mpi(
            ZeroSumConfig(detect_online=args.detect)
        ),
        workers=args.workers,
        chaos=chaos,
        **job_kwargs,
    )
    t0 = time.time()
    step.run()
    step.finalize()
    # the accessor surface is shared by the serial and sharded steps
    print(step.report(0).render())
    print(step.findings(0).render())
    print(step.advice(0).render())
    events = getattr(step, "degradations", [])
    if events:
        # a healed (or degraded) sharded run must say so out loud
        print("Worker recovery/degradation events:")
        for event in events:
            print(f"  [{event.action}] {event.reason}")
    if args.top:
        if step.monitors:
            print(build_cluster_view(step.monitors).render())
        else:  # sharded: summaries were marshalled out of the workers
            print(step.cluster_view().render())
    print(f"(simulated {step.duration_seconds:.2f} s "
          f"in {time.time() - t0:.2f} s of wall time)")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from repro.mpi import Fabric

    nodes_needed = max(1, (args.ranks + 55) // 56)
    nodes = [frontier_node(name=f"frontier{i:05d}") for i in range(nodes_needed)]
    opts = SrunOptions(ntasks=args.ranks, cpus_per_task=1, command="pic")
    step = launch_job(
        nodes,
        opts,
        pic_app(PicConfig(steps=args.steps)),
        monitor_factory=zerosum_mpi(
            ZeroSumConfig(collect_hwt=False, collect_gpu=False)
        ),
        # byte totals are latency-invariant; a longer lookahead keeps
        # sharded epochs (--workers) long and barriers cheap
        fabric=Fabric(remote_latency=8),
        workers=args.workers,
    )
    step.run()
    step.finalize()
    matrix = step.comm_matrix()
    print(matrix.render(bins=min(64, args.ranks)))
    print(f"diagonal dominance (band 1): "
          f"{matrix.diagonal_dominance(1) * 100:.1f} %")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.live import LiveZeroSum

    monitor = LiveZeroSum(
        ZeroSumConfig(
            period_seconds=args.period,
            journal_path=args.journal,
            journal_checkpoint_every=args.checkpoint_every,
            heartbeat_path=args.heartbeat,
            heartbeat_every=1 if args.heartbeat else 0,
            detect_online=args.detect,
        )
    )
    monitor.start()
    deadline = time.time() + args.seconds
    x = 0
    while time.time() < deadline:  # generate some load to observe
        x += sum(i * i for i in range(2000))
    monitor.stop()
    print(monitor.report().render())
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.collect.journal import recover_journal
    from repro.core.archive import write_store_archive
    from repro.core.export import FileSink
    from repro.errors import JournalError
    from repro.live.export import write_live_log

    try:
        recovered = recover_journal(args.journal)
    except (OSError, JournalError) as exc:
        print(f"cannot recover {args.journal}: {exc}", file=sys.stderr)
        return 2
    print(recovered.report().render())
    if recovered.torn_records:
        print(
            f"(discarded {recovered.torn_records} torn trailing journal "
            f"record(s) — the run died mid-write)",
            file=sys.stderr,
        )
    if args.log_dir:
        name = write_live_log(recovered, FileSink(args.log_dir))
        print(f"log written: {args.log_dir}/{name}", file=sys.stderr)
    if args.archive:
        write_store_archive(recovered, args.archive)
        print(f"archive written: {args.archive}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="zerosum-sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="print a machine's topology")
    p.add_argument("machine", choices=sorted(MACHINE_FACTORIES))
    p.add_argument("--gpus", action="store_true", help="include GPU section")
    p.set_defaults(fn=_cmd_topology)

    p = sub.add_parser("run", help="simulate a monitored miniQMC job")
    p.add_argument("cmdline", help='e.g. "OMP_NUM_THREADS=7 srun -n8 -c7 miniqmc"')
    p.add_argument("--blocks", type=int, default=10)
    p.add_argument("--block-jiffies", type=float, default=50.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--offload", action="store_true")
    p.add_argument("--top", action="store_true",
                   help="print the allocation-wide htop-style view")
    p.add_argument("--machine", choices=sorted(MACHINE_FACTORIES),
                   default="frontier")
    p.add_argument("--nodes", type=int, default=1,
                   help="number of simulated nodes (default 1)")
    p.add_argument("--workers", type=int, default=1,
                   help="kernel worker processes for multi-node jobs "
                        "(1 = serial; see repro.launch.sharded)")
    p.add_argument("--detect", action="store_true",
                   help="online contention/precursor detection: raise "
                        "typed alerts during the run, not post mortem")
    p.add_argument("--no-self-heal", action="store_true",
                   help="disable checkpoint-restart of sharded workers "
                        "(lost workers degrade the run instead)")
    # fault-injection drills for the self-healing path; hidden because
    # they deliberately break the run (kind@epoch/shard[*repeat],...)
    p.add_argument("--chaos", default=None, help=argparse.SUPPRESS)
    p.add_argument("--chaos-seed", type=int, default=None,
                   help=argparse.SUPPRESS)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("heatmap", help="PIC proxy communication heatmap")
    p.add_argument("--ranks", type=int, default=64)
    p.add_argument("--steps", type=int, default=6)
    p.add_argument("--workers", type=int, default=1,
                   help="kernel worker processes for multi-node jobs "
                        "(1 = serial; see repro.launch.sharded)")
    p.set_defaults(fn=_cmd_heatmap)

    p = sub.add_parser("live", help="monitor this process via real /proc")
    p.add_argument("--seconds", type=float, default=2.0)
    p.add_argument("--period", type=float, default=0.25)
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="spill a crash-durable journal to PATH")
    p.add_argument("--checkpoint-every", type=int, default=10,
                   help="journal checkpoint period, in samples")
    p.add_argument("--heartbeat", default=None, metavar="PATH",
                   help="append heartbeat lines to PATH")
    p.add_argument("--detect", action="store_true",
                   help="online contention/precursor detection over "
                        "the live samples")
    p.set_defaults(fn=_cmd_live)

    p = sub.add_parser(
        "recover", help="rebuild the report from a crashed run's journal"
    )
    p.add_argument("journal", help="spill journal path written by --journal")
    p.add_argument("--log-dir", default=None, metavar="DIR",
                   help="also write the zerosum.{pid}.log text dump to DIR")
    p.add_argument("--archive", default=None, metavar="PATH",
                   help="also write a columnar npz archive to PATH")
    p.set_defaults(fn=_cmd_recover)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
