"""``zerosum-sim``: run the paper's experiments from the command line.

Subcommands:

* ``topology <machine>`` — print the lstopo-style tree (Listing 1);
* ``run "<srun command line>"`` — simulate a monitored miniQMC job
  and print rank 0's utilization report (Listing 2 / Tables 1-3);
* ``heatmap --ranks N`` — run the PIC proxy and print the Figure 5
  heatmap;
* ``live --seconds S`` — monitor this very process via the real /proc.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import build_cluster_view
from repro.apps import MiniQmcConfig, PicConfig, miniqmc_app, pic_app
from repro.core import (
    ZeroSumConfig,
    advise,
    analyze,
    build_report,
    merge_monitors,
    zerosum_mpi,
)
from repro.launch import SrunOptions, launch_job
from repro.topology import MACHINE_FACTORIES, frontier_node, render_lstopo

__all__ = ["main"]


def _cmd_topology(args: argparse.Namespace) -> int:
    factory = MACHINE_FACTORIES.get(args.machine)
    if factory is None:
        print(f"unknown machine {args.machine!r}; choose from "
              f"{sorted(MACHINE_FACTORIES)}", file=sys.stderr)
        return 2
    print(render_lstopo(factory(), show_gpus=args.gpus))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    opts = SrunOptions.parse(args.cmdline)
    app = miniqmc_app(
        MiniQmcConfig(
            blocks=args.blocks,
            block_jiffies=args.block_jiffies,
            jitter=0.01,
            seed=args.seed,
            offload=args.offload,
        )
    )
    factory = MACHINE_FACTORIES[args.machine]
    step = launch_job(
        [factory()],
        opts,
        app,
        monitor_factory=zerosum_mpi(ZeroSumConfig()),
    )
    t0 = time.time()
    step.run()
    step.finalize()
    monitor = step.monitors[0]
    print(build_report(monitor).render())
    print(analyze(monitor).render())
    print(advise(monitor, opts).render())
    if args.top:
        print(build_cluster_view(step.monitors).render())
    print(f"(simulated {step.duration_seconds:.2f} s "
          f"in {time.time() - t0:.2f} s of wall time)")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    nodes_needed = max(1, (args.ranks + 55) // 56)
    nodes = [frontier_node(name=f"frontier{i:05d}") for i in range(nodes_needed)]
    opts = SrunOptions(ntasks=args.ranks, cpus_per_task=1, command="pic")
    step = launch_job(
        nodes,
        opts,
        pic_app(PicConfig(steps=args.steps)),
        monitor_factory=zerosum_mpi(
            ZeroSumConfig(collect_hwt=False, collect_gpu=False)
        ),
    )
    step.run()
    step.finalize()
    matrix = merge_monitors(step.monitors)
    print(matrix.render(bins=min(64, args.ranks)))
    print(f"diagonal dominance (band 1): "
          f"{matrix.diagonal_dominance(1) * 100:.1f} %")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    from repro.live import LiveZeroSum

    monitor = LiveZeroSum(ZeroSumConfig(period_seconds=args.period))
    monitor.start()
    deadline = time.time() + args.seconds
    x = 0
    while time.time() < deadline:  # generate some load to observe
        x += sum(i * i for i in range(2000))
    monitor.stop()
    print(monitor.report().render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="zerosum-sim", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("topology", help="print a machine's topology")
    p.add_argument("machine", choices=sorted(MACHINE_FACTORIES))
    p.add_argument("--gpus", action="store_true", help="include GPU section")
    p.set_defaults(fn=_cmd_topology)

    p = sub.add_parser("run", help="simulate a monitored miniQMC job")
    p.add_argument("cmdline", help='e.g. "OMP_NUM_THREADS=7 srun -n8 -c7 miniqmc"')
    p.add_argument("--blocks", type=int, default=10)
    p.add_argument("--block-jiffies", type=float, default=50.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--offload", action="store_true")
    p.add_argument("--top", action="store_true",
                   help="print the allocation-wide htop-style view")
    p.add_argument("--machine", choices=sorted(MACHINE_FACTORIES),
                   default="frontier")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("heatmap", help="PIC proxy communication heatmap")
    p.add_argument("--ranks", type=int, default=64)
    p.add_argument("--steps", type=int, default=6)
    p.set_defaults(fn=_cmd_heatmap)

    p = sub.add_parser("live", help="monitor this process via real /proc")
    p.add_argument("--seconds", type=float, default=2.0)
    p.add_argument("--period", type=float, default=0.25)
    p.set_defaults(fn=_cmd_live)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
