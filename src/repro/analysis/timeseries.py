"""Time-series assembly for the stacked utilization charts.

Figures 6 and 7 of the paper plot, per sampling interval, the
user/system/idle split of every LWP and every HWT.  The monitor stores
cumulative jiffy counters; these functions difference them into
per-interval percentages.  Output is plain numpy arrays plus a text
renderer, so no plotting stack is required to inspect the shapes.

These functions accept *any* monitor driver — simulated
(:class:`repro.core.ZeroSum`), live
(:class:`repro.live.LiveZeroSum`), or replayed
(:class:`repro.collect.ReplayZeroSum`) — since all three expose the
same ``lwp_series``/``hwt_series``/``classify``/``hz`` surface over a
shared :class:`~repro.collect.store.SampleStore`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MonitorError

__all__ = [
    "UtilizationSeries",
    "observed_processors",
    "observed_migrations",
    "lwp_series",
    "hwt_series",
    "all_lwp_series",
    "all_hwt_series",
    "render_series_table",
]


@dataclass
class UtilizationSeries:
    """Stacked idle/system/user percentages over time for one entity."""

    label: str
    seconds: np.ndarray  # interval end times
    user_pct: np.ndarray
    system_pct: np.ndarray
    idle_pct: np.ndarray

    def __len__(self) -> int:
        return len(self.seconds)

    @property
    def busy_pct(self) -> np.ndarray:
        return self.user_pct + self.system_pct

    def mean_user(self) -> float:
        """Mean user% across the series."""
        return float(self.user_pct.mean()) if len(self.user_pct) else 0.0

    def noisiness(self) -> float:
        """Std-dev of the busy series — Figure 6's visual 'noise'."""
        return float(self.busy_pct.std()) if len(self.busy_pct) else 0.0


def _differences(ticks: np.ndarray, *counters: np.ndarray):
    """Per-interval deltas over strictly increasing sample ticks.

    A duplicated tick (the same period journaled twice, a recovered
    run replaying its torn tail) or a regressed one (clock skew in a
    merged log) yields a zero- or negative-width interval.  Clamping
    its width to one tick — the old behaviour — fabricates utilization
    out of thin air: the counters advanced over *zero* observed time,
    so a 100%-busy thread shows a spurious 1000%+ spike.  Instead the
    offending rows are dropped: each kept sample must strictly exceed
    the running maximum of the ticks kept before it, and the counter
    deltas are taken over the kept rows only, so every reported
    interval has positive width and honest rates.
    """
    if len(ticks) < 2:
        raise MonitorError("need at least two samples for a time series")
    runmax = np.maximum.accumulate(ticks)
    keep = np.ones(len(ticks), dtype=bool)
    keep[1:] = ticks[1:] > runmax[:-1]
    kept = ticks[keep]
    if len(kept) < 2:
        raise MonitorError(
            "need at least two distinct sample ticks for a time series"
        )
    dt = np.diff(kept)
    return kept, dt, [np.diff(c[keep]) for c in counters]


def lwp_series(monitor, tid: int) -> UtilizationSeries:
    """Figure 6: one thread's user/system/idle over time."""
    series = monitor.lwp_series[tid]
    ticks = series.column("tick")
    kept, dt, (du, ds) = _differences(
        ticks, series.column("utime"), series.column("stime")
    )
    user = 100.0 * du / dt
    system = 100.0 * ds / dt
    idle = np.clip(100.0 - user - system, 0.0, 100.0)
    hz = monitor.hz
    return UtilizationSeries(
        label=f"LWP {tid} ({monitor.classify(tid)})",
        seconds=kept[1:] / hz,
        user_pct=user,
        system_pct=system,
        idle_pct=idle,
    )


def hwt_series(monitor, cpu: int) -> UtilizationSeries:
    """Figure 7: one hardware thread's utilization over time."""
    series = monitor.hwt_series[cpu]
    ticks = series.column("tick")
    kept, dt, (du, ds, di) = _differences(
        ticks,
        series.column("user"),
        series.column("system"),
        series.column("idle"),
    )
    hz = monitor.hz
    return UtilizationSeries(
        label=f"CPU {cpu}",
        seconds=kept[1:] / hz,
        user_pct=100.0 * du / dt,
        system_pct=100.0 * ds / dt,
        idle_pct=100.0 * di / dt,
    )


def all_lwp_series(monitor) -> list[UtilizationSeries]:
    """Figure 6: one series per observed thread (needs >= 2 samples)."""
    out = []
    for tid in monitor.observed_tids():
        if len(monitor.lwp_series[tid]) >= 2:
            out.append(lwp_series(monitor, tid))
    return out


def all_hwt_series(monitor) -> list[UtilizationSeries]:
    """Figure 7: one series per monitored CPU (needs >= 2 samples)."""
    out = []
    for cpu in sorted(monitor.hwt_series):
        if len(monitor.hwt_series[cpu]) >= 2:
            out.append(hwt_series(monitor, cpu))
    return out


def render_series_table(series_list: list[UtilizationSeries], width: int = 10) -> str:
    """Text table: one row per interval, one column group per entity."""
    if not series_list:
        return "(no series)\n"
    n = min(len(s) for s in series_list)
    header = ["t(s)".rjust(8)] + [
        f"{s.label[:width]:>{width + 12}} (u/s/i)" for s in series_list
    ]
    lines = ["  ".join(header)]
    for i in range(n):
        cells = [f"{series_list[0].seconds[i]:8.1f}"]
        for s in series_list:
            cells.append(
                f"{s.user_pct[i]:6.1f}/{s.system_pct[i]:5.1f}/{s.idle_pct[i]:5.1f}"
                .rjust(width + 12)
            )
        lines.append("  ".join(cells))
    return "\n".join(lines) + "\n"


def observed_processors(monitor, tid: int) -> np.ndarray:
    """The CPU the thread was last seen on, per sample — the §4 data
    behind "the OpenMP threads were all migrated at least once during
    execution, as captured by ZeroSum recording the core on which the
    thread last executed at each periodic measurement"."""
    return monitor.lwp_series[tid].column("processor").astype(int)


def observed_migrations(monitor, tid: int) -> int:
    """Number of processor changes visible at sampling granularity."""
    procs = observed_processors(monitor, tid)
    if len(procs) < 2:
        return 0
    return int((np.diff(procs) != 0).sum())
