"""Job-wide aggregation: the "htop for the whole allocation" view.

§2 motivates ZeroSum with the htop screenshot: what users want is that
view "for all nodes in a given allocation, and for all resources at
their disposal".  This module merges the per-rank monitors of a job
into exactly that: per-rank utilization rows, per-node rollups with
utilization bars, GPU busyness, memory headroom, and a load-imbalance
metric across ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.monitor import ZeroSum
from repro.core.reports import UtilizationReport, build_report
from repro.errors import MonitorError

__all__ = [
    "RankSummary",
    "NodeSummary",
    "ClusterView",
    "build_cluster_view",
    "assemble_cluster_view",
    "rank_summary",
]

_BAR = "█"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return _BAR * filled + "·" * (width - filled)


@dataclass(frozen=True)
class RankSummary:
    """One rank's rollup."""

    rank: int
    hostname: str
    pid: int
    threads: int
    cpus_allowed: int
    mean_user_pct: float
    mean_system_pct: float
    total_nv_ctx: int
    rss_kib: float
    gpu_busy_pct: float  # -1 if no GPU

    @property
    def busy_pct(self) -> float:
        return self.mean_user_pct + self.mean_system_pct


@dataclass(frozen=True)
class NodeSummary:
    """One node's rollup across its ranks."""

    hostname: str
    ranks: int
    threads: int
    mean_busy_pct: float
    mem_used_frac: float
    gpu_busy_pct: float  # -1 if no GPUs observed


@dataclass
class ClusterView:
    """The whole allocation at a glance."""

    ranks: list[RankSummary] = field(default_factory=list)
    nodes: list[NodeSummary] = field(default_factory=list)

    def imbalance(self) -> float:
        """(max - min) / mean of per-rank busy%, 0 for a balanced job."""
        busy = np.array([r.busy_pct for r in self.ranks])
        if len(busy) == 0 or busy.mean() <= 0:
            return 0.0
        return float((busy.max() - busy.min()) / busy.mean())

    def laggards(self, threshold: float = 0.8) -> list[RankSummary]:
        """Ranks whose busy% is below ``threshold`` × the job median."""
        if not self.ranks:
            return []
        median = float(np.median([r.busy_pct for r in self.ranks]))
        return [r for r in self.ranks if r.busy_pct < threshold * median]

    def render(self, bar_width: int = 20) -> str:
        """Text dashboard: node rollups, per-rank rows, imbalance."""
        lines = ["Allocation overview:"]
        lines.append(
            f"{'node':<16} {'ranks':>5} {'thr':>4} {'cpu busy':>9}  "
            f"{'':{bar_width}}  {'mem':>5} {'gpu':>6}"
        )
        for node in self.nodes:
            gpu = f"{node.gpu_busy_pct:5.1f}%" if node.gpu_busy_pct >= 0 else "   --"
            lines.append(
                f"{node.hostname:<16} {node.ranks:>5} {node.threads:>4} "
                f"{node.mean_busy_pct:>8.1f}%  "
                f"{_bar(node.mean_busy_pct / 100, bar_width)}  "
                f"{node.mem_used_frac * 100:>4.0f}% {gpu:>6}"
            )
        lines.append("")
        lines.append(
            f"{'rank':>4} {'node':<16} {'pid':>6} {'thr':>4} {'user':>6} "
            f"{'sys':>5} {'nv_ctx':>7} {'rss MiB':>8} {'gpu':>6}"
        )
        for r in self.ranks:
            gpu = f"{r.gpu_busy_pct:5.1f}%" if r.gpu_busy_pct >= 0 else "   --"
            lines.append(
                f"{r.rank:>4} {r.hostname:<16} {r.pid:>6} {r.threads:>4} "
                f"{r.mean_user_pct:>5.1f}% {r.mean_system_pct:>4.1f}% "
                f"{r.total_nv_ctx:>7} {r.rss_kib / 1024:>8.1f} {gpu:>6}"
            )
        lines.append("")
        lines.append(f"load imbalance ((max-min)/mean busy): "
                     f"{self.imbalance() * 100:.1f} %")
        lag = self.laggards()
        if lag:
            lines.append(
                "laggard ranks: " + ", ".join(str(r.rank) for r in lag)
            )
        return "\n".join(lines) + "\n"


def rank_summary(monitor: ZeroSum, report: UtilizationReport) -> RankSummary:
    # normalize by the *job* window, not each thread's own observation
    # window, so ranks that finish early correctly read as less busy —
    # that asymmetry is what the imbalance metric measures
    duration = monitor.duration_ticks
    rows = []
    for tid in monitor.observed_tids():
        if "ZeroSum" in monitor.classify(tid):
            continue
        series = monitor.lwp_series[tid]
        user = 100.0 * series.last("utime") / duration
        system = 100.0 * series.last("stime") / duration
        if user + system >= 1.0:
            rows.append((user, system))
    if not rows:
        rows = [(0.0, 0.0)]
    gpu_busy = -1.0
    if monitor.gpu_series:
        vals = []
        for series in monitor.gpu_series.values():
            col = series.column("busy_percent")
            if len(col):
                vals.append(float(col.mean()))
        if vals:
            gpu_busy = float(np.mean(vals))
    rss = monitor.mem_series.last("rss_kib") if len(monitor.mem_series) else 0.0
    if len(monitor.mem_series):
        rss = float(monitor.mem_series.column("rss_kib").max())
    return RankSummary(
        rank=report.rank if report.rank is not None else -1,
        hostname=report.hostname,
        pid=report.pid,
        threads=len(report.lwp_rows),
        cpus_allowed=len(report.cpus_allowed),
        mean_user_pct=float(np.mean([u for u, _ in rows])),
        mean_system_pct=float(np.mean([s for _, s in rows])),
        total_nv_ctx=report.total_nv_ctx(),
        rss_kib=rss,
        gpu_busy_pct=gpu_busy,
    )


_rank_summary = rank_summary  # historical (pre-sharding) name


def assemble_cluster_view(
    summaries: list[RankSummary], node_mem_used: dict[str, float]
) -> ClusterView:
    """Assemble the allocation view from already-computed rank rollups.

    ``node_mem_used`` maps hostname → used-memory fraction at the end
    of the run.  This is the merge half of :func:`build_cluster_view`,
    shared with the sharded launcher, whose workers marshal
    :class:`RankSummary` rows across process boundaries instead of
    live monitors.
    """
    if not summaries:
        raise MonitorError("no monitors to aggregate")
    view = ClusterView()
    per_node: dict[str, list[RankSummary]] = {}
    for summary in summaries:
        view.ranks.append(summary)
        per_node.setdefault(summary.hostname, []).append(summary)
    view.ranks.sort(key=lambda r: r.rank)

    for hostname, node_summaries in sorted(per_node.items()):
        gpu_vals = [s.gpu_busy_pct for s in node_summaries if s.gpu_busy_pct >= 0]
        view.nodes.append(
            NodeSummary(
                hostname=hostname,
                ranks=len(node_summaries),
                threads=sum(s.threads for s in node_summaries),
                mean_busy_pct=float(
                    np.mean([s.busy_pct for s in node_summaries])
                ),
                mem_used_frac=float(node_mem_used.get(hostname, 0.0)),
                gpu_busy_pct=float(np.mean(gpu_vals)) if gpu_vals else -1.0,
            )
        )
    return view


def node_mem_used_frac(monitor: ZeroSum) -> float:
    """Used-memory fraction of the node a monitor's process lives on."""
    mem = monitor.process.node.memory
    return 1.0 - (mem.available_bytes / mem.total_bytes)


def build_cluster_view(monitors: list[ZeroSum]) -> ClusterView:
    """Merge all ranks' monitors into the allocation-wide view."""
    if not monitors:
        raise MonitorError("no monitors to aggregate")
    summaries = []
    node_mem: dict[str, float] = {}
    for monitor in monitors:
        report = build_report(monitor)
        summary = rank_summary(monitor, report)
        summaries.append(summary)
        node_mem.setdefault(summary.hostname, node_mem_used_frac(monitor))
    return assemble_cluster_view(summaries, node_mem)
