"""Post-processing: time series, overhead statistics, rank reordering."""

from repro.analysis.logparse import CsvTable, ParsedLog, merge_p2p_logs, parse_log
from repro.analysis.cluster_view import (
    ClusterView,
    NodeSummary,
    RankSummary,
    build_cluster_view,
)
from repro.analysis.overhead import (
    DistributionSummary,
    OverheadResult,
    compare_distributions,
)
from repro.analysis.reorder import (
    offnode_bytes,
    placement_improvement,
    suggest_placement,
)
from repro.analysis.timeseries import (
    UtilizationSeries,
    observed_migrations,
    observed_processors,
    all_hwt_series,
    all_lwp_series,
    hwt_series,
    lwp_series,
    render_series_table,
)

__all__ = [
    "ParsedLog",
    "CsvTable",
    "parse_log",
    "merge_p2p_logs",
    "ClusterView",
    "NodeSummary",
    "RankSummary",
    "build_cluster_view",
    "DistributionSummary",
    "OverheadResult",
    "compare_distributions",
    "offnode_bytes",
    "suggest_placement",
    "placement_improvement",
    "UtilizationSeries",
    "lwp_series",
    "hwt_series",
    "all_lwp_series",
    "all_hwt_series",
    "render_series_table",
    "observed_processors",
    "observed_migrations",
]
