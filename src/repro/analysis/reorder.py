"""Rank placement suggestions from the communication matrix.

§3.1.3 notes the point-to-point data "could also be used to guide the
logical MPI process ordering on the nodes to exploit lower latency
communication between ranks executing on the same node".  Implemented
here: a greedy clustering that packs heavily-communicating ranks onto
the same node, plus the metric (off-node bytes) that quantifies the
improvement.
"""

from __future__ import annotations

import numpy as np

from repro.core.heatmap import CommMatrix
from repro.errors import MonitorError

__all__ = ["offnode_bytes", "suggest_placement", "placement_improvement"]


def offnode_bytes(matrix: CommMatrix, placement: list[int], ranks_per_node: int) -> int:
    """Bytes crossing node boundaries under a placement.

    ``placement[i]`` is the slot (0..n-1) rank *i* occupies; slots are
    grouped into nodes of ``ranks_per_node`` consecutive slots.
    """
    n = matrix.size
    if sorted(placement) != list(range(n)):
        raise MonitorError("placement must be a permutation of 0..n-1")
    if ranks_per_node < 1:
        raise MonitorError("ranks_per_node must be >= 1")
    node_of = np.asarray([placement[r] // ranks_per_node for r in range(n)])
    cross = node_of[:, None] != node_of[None, :]
    return int(matrix.bytes[cross].sum())


def suggest_placement(
    matrix: CommMatrix, ranks_per_node: int, refine_passes: int = 8
) -> list[int]:
    """Greedy locality packing with swap refinement.

    Phase 1 repeatedly seeds a node with the rank that has the most
    remaining traffic, then fills the node with the unplaced ranks most
    connected to the current members (ties broken deterministically by
    rank id).  Phase 2 is a Kernighan-Lin-style hill climb: swap pairs
    of ranks across nodes whenever that reduces off-node bytes — this
    is what finds the 2-D blocks a stencil wants, where pure greedy
    ties itself into strips.  Returns ``placement`` (rank → slot).
    """
    n = matrix.size
    if ranks_per_node < 1:
        raise MonitorError("ranks_per_node must be >= 1")
    sym = (matrix.bytes + matrix.bytes.T).astype(np.float64)
    unplaced = set(range(n))
    placement = [0] * n
    slot = 0
    while unplaced:
        # seed: heaviest total communicator among unplaced ranks
        seed = max(sorted(unplaced), key=lambda r: (float(sym[r].sum()), -r))
        members = [seed]
        unplaced.remove(seed)
        while len(members) < ranks_per_node and unplaced:
            best = max(
                sorted(unplaced),
                key=lambda r: (float(sym[r, members].sum()), -r),
            )
            members.append(best)
            unplaced.remove(best)
        for rank in members:
            placement[rank] = slot
            slot += 1

    # phase 2: pairwise swap refinement
    node_of = np.asarray([placement[r] // ranks_per_node for r in range(n)])
    for _ in range(max(0, refine_passes)):
        improved = False
        for a in range(n):
            # connection of a to each node
            for b in range(a + 1, n):
                na, nb = node_of[a], node_of[b]
                if na == nb:
                    continue
                # gain = (external edges removed) - (internal edges cut)
                a_to_nb = float(sym[a, node_of == nb].sum()) - sym[a, b]
                a_to_na = float(sym[a, node_of == na].sum())
                b_to_na = float(sym[b, node_of == na].sum()) - sym[a, b]
                b_to_nb = float(sym[b, node_of == nb].sum())
                gain = (a_to_nb - a_to_na) + (b_to_na - b_to_nb)
                if gain > 0:
                    node_of[a], node_of[b] = nb, na
                    placement[a], placement[b] = placement[b], placement[a]
                    improved = True
        if not improved:
            break
    return placement


def placement_improvement(
    matrix: CommMatrix, ranks_per_node: int
) -> tuple[int, int, list[int]]:
    """(baseline off-node bytes, optimized off-node bytes, placement)."""
    identity = list(range(matrix.size))
    base = offnode_bytes(matrix, identity, ranks_per_node)
    suggestion = suggest_placement(matrix, ranks_per_node)
    improved = offnode_bytes(matrix, suggestion, ranks_per_node)
    return base, improved, suggestion
