"""Overhead statistics (§4.1, Figure 8).

The paper measures ZeroSum's cost by running miniQMC ten times with
and without the tool and comparing the runtime distributions with a
t-test: statistically indistinguishable with one thread per core, a
~0.5 % mean slowdown with two threads per core.  This module provides
the statistical machinery: summary stats, Welch's and Student's
t-tests (via scipy), and a rendered comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import MonitorError

__all__ = ["DistributionSummary", "OverheadResult", "compare_distributions"]


@dataclass(frozen=True)
class DistributionSummary:
    """Mean/std/extremes of one set of repeated runtimes."""

    label: str
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @classmethod
    def from_samples(cls, label: str, samples) -> "DistributionSummary":
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size < 2:
            raise MonitorError("need at least two runs per distribution")
        return cls(
            label=label,
            n=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    def render(self) -> str:
        """One-line mean ± std summary."""
        return (
            f"{self.label}: {self.mean:.4f} ± {self.std:.4f} s "
            f"(n={self.n}, min={self.minimum:.4f}, max={self.maximum:.4f})"
        )


@dataclass(frozen=True)
class OverheadResult:
    """Outcome of comparing baseline vs monitored runtimes."""

    baseline: DistributionSummary
    treated: DistributionSummary
    t_statistic: float
    p_value: float
    mean_overhead_seconds: float
    mean_overhead_percent: float

    @property
    def significant(self) -> bool:
        """True if the distributions differ at the 5 % level."""
        return self.p_value < 0.05

    def render(self) -> str:
        """Full comparison: both summaries, delta, t-test verdict."""
        verdict = (
            "distributions differ (monitoring overhead detected)"
            if self.significant
            else "no statistically significant difference"
        )
        return "\n".join(
            [
                self.baseline.render(),
                self.treated.render(),
                f"overhead: {self.mean_overhead_seconds:+.4f} s "
                f"({self.mean_overhead_percent:+.3f} %)",
                f"t-test: t={self.t_statistic:.3f}, p={self.p_value:.4f} "
                f"-> {verdict}",
            ]
        )


def compare_distributions(
    baseline,
    treated,
    labels: tuple[str, str] = ("baseline", "with zerosum"),
    equal_var: bool = False,
) -> OverheadResult:
    """Summarize and t-test two runtime sample sets.

    ``equal_var=False`` (default) is Welch's t-test, which is the safe
    choice when the monitored runs are noisier — exactly what the paper
    observes in Figure 8.
    """
    base = np.asarray(baseline, dtype=np.float64)
    treat = np.asarray(treated, dtype=np.float64)
    b = DistributionSummary.from_samples(labels[0], base)
    t = DistributionSummary.from_samples(labels[1], treat)
    stat, p = stats.ttest_ind(base, treat, equal_var=equal_var)
    delta = t.mean - b.mean
    return OverheadResult(
        baseline=b,
        treated=t,
        t_statistic=float(stat),
        p_value=float(p),
        mean_overhead_seconds=delta,
        mean_overhead_percent=100.0 * delta / b.mean if b.mean else 0.0,
    )
