"""Post-processing of ZeroSum log files (§3.6).

The paper: "a detailed dump of all data collected by ZeroSum is also
written to the log as comma separated values, allowing for time-series
analysis of the periodic data.  The log file also contains the MPI
point-to-point data collected between all ranks, which can be
post-processed to produce a heatmap."

This module is that post-processor: it parses a log written by
:func:`repro.core.export.write_log` back into numpy arrays and a
:class:`~repro.core.heatmap.CommMatrix`, without needing the monitor
objects — exactly the offline workflow a user on a login node has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.heatmap import CommMatrix
from repro.errors import MonitorError

__all__ = ["ParsedLog", "parse_log", "merge_p2p_logs"]

_SECTIONS = {
    "== LWP samples (CSV) ==": "lwp",
    "== HWT samples (CSV) ==": "hwt",
    "== GPU samples (CSV) ==": "gpu",
    "== memory samples (CSV) ==": "memory",
    "== MPI point-to-point (CSV) ==": "p2p",
}


@dataclass
class CsvTable:
    """One parsed CSV section."""

    columns: tuple[str, ...]
    rows: np.ndarray  # (n, ncols) float64

    def column(self, name: str) -> np.ndarray:
        """One named column as a float array."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise MonitorError(f"no column {name!r} in table") from None
        return self.rows[:, idx]

    def group_rows(self, name: str) -> dict[float, np.ndarray]:
        """Rows grouped by one column's value, in first-seen order.

        This is how the replay driver splits the concatenated LWP/HWT/GPU
        sections back into per-entity series.
        """
        col = self.column(name)
        return {
            key: self.rows[col == key] for key in dict.fromkeys(col.tolist())
        }

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ParsedLog:
    """Everything recoverable from one rank's log file."""

    header: str = ""
    report_text: str = ""
    lwp: Optional[CsvTable] = None
    hwt: Optional[CsvTable] = None
    gpu: Optional[CsvTable] = None
    memory: Optional[CsvTable] = None
    p2p_rows: list[tuple[int, int, int, int]] = field(default_factory=list)

    def p2p_matrix(self, world_size: int) -> CommMatrix:
        """This rank's point-to-point contribution as a matrix."""
        matrix = CommMatrix.zeros(world_size)
        for src, dst, nbytes, messages in self.p2p_rows:
            if not (0 <= src < world_size and 0 <= dst < world_size):
                raise MonitorError(
                    f"p2p entry ({src},{dst}) outside world of {world_size}"
                )
            matrix.bytes[src, dst] += nbytes
            matrix.messages[src, dst] += messages
        return matrix

    def duration_seconds(self) -> float:
        """Run duration recovered from the report header."""
        for line in self.report_text.splitlines():
            if line.startswith("Duration of execution:"):
                return float(line.split(":")[1].split()[0])
        raise MonitorError("log carries no duration line")


def _parse_csv(lines: list[str]) -> CsvTable:
    if not lines:
        raise MonitorError("empty CSV section")
    columns = tuple(lines[0].split(","))
    rows = []
    for line in lines[1:]:
        if not line.strip():
            continue
        rows.append([float(v) for v in line.split(",")])
    data = np.asarray(rows, dtype=np.float64) if rows else np.zeros(
        (0, len(columns))
    )
    if rows and data.shape[1] != len(columns):
        raise MonitorError("CSV row width does not match header")
    return CsvTable(columns=columns, rows=data)


def parse_log(text: str) -> ParsedLog:
    """Parse the full text of one ``zerosum.<rank>.log``."""
    out = ParsedLog()
    lines = text.splitlines()
    # locate section markers
    marks: list[tuple[int, str]] = []
    for i, line in enumerate(lines):
        if line.strip() in _SECTIONS:
            marks.append((i, _SECTIONS[line.strip()]))
    body_end = marks[0][0] if marks else len(lines)
    body = lines[:body_end]
    # split banner from report at the Duration line
    for i, line in enumerate(body):
        if line.startswith("Duration of execution:"):
            out.header = "\n".join(body[:i])
            out.report_text = "\n".join(body[i:])
            break
    else:
        out.header = "\n".join(body)

    for idx, (start, kind) in enumerate(marks):
        end = marks[idx + 1][0] if idx + 1 < len(marks) else len(lines)
        section = [l for l in lines[start + 1 : end] if l.strip()]
        if not section:
            continue
        if kind == "p2p":
            for line in section[1:]:  # skip header
                src, dst, nbytes, messages = (int(v) for v in line.split(","))
                out.p2p_rows.append((src, dst, nbytes, messages))
        else:
            setattr(out, kind, _parse_csv(section))
    return out


def merge_p2p_logs(logs: list[ParsedLog], world_size: int) -> CommMatrix:
    """Merge the p2p sections of all ranks' logs into the Figure 5
    heatmap matrix — the offline equivalent of
    :func:`repro.core.heatmap.merge_monitors`."""
    if not logs:
        raise MonitorError("no logs to merge")
    matrix = CommMatrix.zeros(world_size)
    for log in logs:
        matrix.add(log.p2p_matrix(world_size))
    return matrix
