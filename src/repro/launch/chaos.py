"""Deterministic fault injection for the sharded launcher.

Recovery code that is only exercised by real failures is recovery code
that has never run.  The chaos harness turns worker failure into a
first-class, *seeded* input: a :class:`ChaosPlan` names which shard
misbehaves, at which epoch, and how —

* ``kill``    — the worker exits hard (``os._exit``) after computing
  the epoch but before replying: the orchestrator sees EOF, exactly
  like a segfault or an OOM kill;
* ``hang``    — the worker stops heartbeating and sleeps forever
  (optionally ignoring SIGTERM, modelling a task wedged in
  uninterruptible I/O): only the hang detector can catch it;
* ``slow``    — the worker sleeps ``delay_seconds`` *while still
  heartbeating*: a straggler that must NOT be respawned;
* ``corrupt`` — the worker emits one garbage frame on the pipe before
  its real reply: the orchestrator's unpickling fails mid-protocol;
* ``ckpt_kill`` — latched until the next checkpoint boundary, where
  the worker dies *inside* the checkpoint sequence: after announcing
  the replacement spare but before retiring its predecessor.  Both
  generations' spares briefly share the slot pipe, so recovery must
  disambiguate them via the adoption handshake — the worst-case
  placement for an external ``kill -9``.

Plans are consumed by the **orchestrator**, which embeds the directive
in the epoch command it sends the worker.  That placement is load-
bearing for checkpoint-restart testing: when a killed worker is
respawned and the intervening epochs are replayed, the replay must not
re-fire the kill — the orchestrator already consumed that event.  A
``repeat`` budget above 1 deliberately re-fires on the replacement
worker to exercise respawn-budget exhaustion.

``parse_chaos_spec`` reads the hidden ``--chaos`` CLI syntax:
``kind@epoch/shard[*repeat]``, comma-separated, e.g.
``kill@3/1,hang@5/0*2``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.errors import LaunchError

__all__ = ["ChaosEvent", "ChaosPlan", "parse_chaos_spec", "CHAOS_KINDS"]

CHAOS_KINDS = ("kill", "hang", "slow", "corrupt", "ckpt_kill")

_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z_]+)@(?P<epoch>\d+)/(?P<shard>\d+)(?:\*(?P<repeat>\d+))?$"
)


@dataclass
class ChaosEvent:
    """One planned fault: ``kind`` strikes ``shard`` at ``epoch``.

    ``epoch`` counts the orchestrator's barrier epochs from 0; the
    event fires on the first epoch ``>= epoch`` that the shard is
    actually commanded (so "final epoch" plans don't miss when a run
    ends early).  ``repeat`` is the number of firings: each firing
    consumes one count, and a respawned worker is eligible for the
    remaining ones.
    """

    kind: str
    epoch: int
    shard: int
    repeat: int = 1
    #: sleep injected by ``slow``, in wall seconds
    delay_seconds: float = 0.2
    #: ``hang`` only: also ignore SIGTERM, forcing the kill escalation
    ignore_term: bool = False

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise LaunchError(
                f"unknown chaos kind {self.kind!r}; "
                f"choose from {CHAOS_KINDS}"
            )
        if self.epoch < 0 or self.shard < 0:
            raise LaunchError("chaos epoch and shard must be >= 0")
        if self.repeat < 1:
            raise LaunchError("chaos repeat must be >= 1")
        if self.delay_seconds < 0:
            raise LaunchError("chaos delay_seconds must be >= 0")

    def directive(self) -> dict:
        """The wire form embedded in the worker's epoch command."""
        return {
            "kind": self.kind,
            "delay_seconds": self.delay_seconds,
            "ignore_term": self.ignore_term,
        }


@dataclass
class ChaosPlan:
    """A deterministic schedule of worker faults.

    The plan is pure data; the sharded orchestrator calls
    :meth:`take` once per (shard, epoch) command and forwards any
    directive to the worker.  Consumption is stateful — an event with
    ``repeat=1`` fires exactly once per run, however many times the
    surrounding epochs are replayed during recovery.
    """

    events: list[ChaosEvent] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        epochs: int,
        events: int = 1,
        kinds: tuple[str, ...] = CHAOS_KINDS,
    ) -> "ChaosPlan":
        """A reproducible random plan: same seed, same faults."""
        if shards < 1 or epochs < 1:
            raise LaunchError("seeded plan needs shards >= 1 and epochs >= 1")
        rng = np.random.default_rng(seed)
        drawn = [
            ChaosEvent(
                kind=kinds[int(rng.integers(len(kinds)))],
                epoch=int(rng.integers(epochs)),
                shard=int(rng.integers(shards)),
            )
            for _ in range(events)
        ]
        return cls(events=drawn, seed=seed)

    def take(self, shard: int, epoch: int) -> list[dict]:
        """Consume the directives due for this shard's epoch command.

        Returns at most one directive per pending event; an event fires
        on the first commanded epoch at or past its own.
        """
        fired: list[dict] = []
        for event in self.events:
            if event.repeat > 0 and event.shard == shard and epoch >= event.epoch:
                event.repeat -= 1
                fired.append(event.directive())
        return fired

    @property
    def exhausted(self) -> bool:
        """Whether every planned fault has fired."""
        return all(e.repeat <= 0 for e in self.events)


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse the ``--chaos`` syntax: ``kind@epoch/shard[*repeat],...``."""
    events: list[ChaosEvent] = []
    for part in filter(None, (p.strip() for p in spec.split(","))):
        match = _SPEC_RE.match(part)
        if match is None:
            raise LaunchError(
                f"bad chaos spec {part!r}; expected kind@epoch/shard[*repeat]"
            )
        events.append(
            ChaosEvent(
                kind=match.group("kind"),
                epoch=int(match.group("epoch")),
                shard=int(match.group("shard")),
                repeat=int(match.group("repeat") or 1),
            )
        )
    if not events:
        raise LaunchError("empty chaos spec")
    return ChaosPlan(events=events)
