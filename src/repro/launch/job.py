"""Job-step orchestration: build the simulated world and run it.

:func:`launch_job` is the simulation analogue of typing::

    OMP_NUM_THREADS=7 srun -n8 -c7 zerosum-mpi miniqmc

It instantiates nodes, computes per-rank assignments, spawns one
process per rank with its main-thread behavior, wires up MPI and an
OpenMP runtime per process, optionally spawns the unbound MPI helper
thread (the ``Other`` row of the paper's tables), and optionally
attaches a monitor per rank (the ``zerosum-mpi`` wrapper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.errors import LaunchError
from repro.kernel.directives import Compute, Sleep
from repro.kernel.lwp import Behavior, ThreadRole
from repro.kernel.process import SimProcess
from repro.kernel.scheduler import SimKernel
from repro.launch.options import SrunOptions
from repro.launch.slurm import TaskAssignment, assign_tasks
from repro.mpi.comm import MpiJob, RankComm
from repro.mpi.fabric import Fabric
from repro.openmp.runtime import OpenMPRuntime
from repro.topology.objects import Machine

__all__ = ["RankContext", "JobStep", "launch_job", "AppFactory"]

#: "caller did not choose": lets launch_sharded keep its own default
#: recovery policy without this module importing it eagerly
_UNSET_RECOVERY = object()


@dataclass
class RankContext:
    """Everything one rank's application code can see."""

    rank: int
    size: int
    env: dict[str, str]
    assignment: TaskAssignment
    kernel: Optional[SimKernel] = None
    process: Optional[SimProcess] = None
    comm: Optional[RankComm] = None
    omp: Optional[OpenMPRuntime] = None
    gpus: list = field(default_factory=list)  # list[GpuDevice]

    @property
    def node(self):
        assert self.process is not None
        return self.process.node


class AppFactory(Protocol):
    """An application: RankContext → main-thread behavior generator."""

    def __call__(self, ctx: RankContext) -> Behavior: ...


class _Monitor(Protocol):
    def finalize(self) -> None: ...


def _mpi_helper_behavior(period_ticks: int = 70) -> Behavior:
    """The unbound progress/helper thread MPI runtimes spawn.

    Wakes rarely, does almost nothing — its signature in the LWP report
    is utime≈stime≈0 with a node-wide affinity list.
    """
    while True:
        yield Sleep(period_ticks)
        yield Compute(0.001, user_frac=0.0)


@dataclass
class JobStep:
    """A launched job: world, processes, monitors, results."""

    kernel: SimKernel
    options: SrunOptions
    assignments: list[TaskAssignment]
    contexts: list[RankContext]
    mpi: Optional[MpiJob]
    monitors: list = field(default_factory=list)
    ticks_run: int = 0

    @property
    def processes(self) -> list[SimProcess]:
        return [ctx.process for ctx in self.contexts if ctx.process is not None]

    def run(self, max_ticks: int = 10_000_000, raise_on_stall: bool = True) -> int:
        """Run to completion; returns elapsed ticks."""
        self.ticks_run = self.kernel.run(
            max_ticks=max_ticks, raise_on_stall=raise_on_stall
        )
        return self.ticks_run

    def finalize(self) -> None:
        """Flush all monitors (end-of-execution reports)."""
        for monitor in self.monitors:
            monitor.finalize()

    # -- convenience accessors over the attached monitors -----------------
    def monitor(self, rank: int = 0):
        """The ZeroSum monitor of one rank (requires a monitor_factory)."""
        if not self.monitors:
            raise LaunchError("job was launched without monitors")
        if not 0 <= rank < len(self.monitors):
            raise LaunchError(f"no monitor for rank {rank}")
        return self.monitors[rank]

    def report(self, rank: int = 0):
        """Utilization report for one rank (Listing 2 layout)."""
        from repro.core.reports import build_report

        return build_report(self.monitor(rank))

    def findings(self, rank: int = 0):
        """Contention/misconfiguration findings for one rank."""
        from repro.core.contention import analyze

        return analyze(self.monitor(rank))

    def advice(self, rank: int = 0):
        """Launch-configuration advice derived from one rank's run."""
        from repro.core.advisor import advise

        return advise(self.monitor(rank), self.options)

    def comm_matrix(self):
        """The merged point-to-point bytes matrix (Figure 5 input)."""
        from repro.core.heatmap import merge_monitors

        return merge_monitors(self.monitors)

    @property
    def duration_seconds(self) -> float:
        return self.ticks_run / self.kernel.clock.hz


def launch_job(
    machines: list[Machine] | Machine,
    options: SrunOptions,
    app: AppFactory,
    *,
    use_mpi: bool = True,
    helper_thread: bool = True,
    monitor_factory: Optional[Callable[[RankContext], _Monitor]] = None,
    fabric: Optional[Fabric] = None,
    timeslice: int = 3,
    smt_efficiency: float = 1.0,
    workers: int = 1,
    epoch_ticks: Optional[int] = None,
    recovery=_UNSET_RECOVERY,
    chaos=None,
) -> JobStep:
    """Build the simulated world for one job step (does not run it).

    ``workers > 1`` shards a multi-node job across a pool of kernel
    worker processes (see :mod:`repro.launch.sharded`) and returns a
    :class:`~repro.launch.sharded.ShardedJobStep` with the same
    run/report surface.  Jobs that occupy a single node always take
    the serial path, whatever ``workers`` says.

    ``recovery`` (a :class:`~repro.launch.checkpoint.RecoveryPolicy`,
    ``None`` to disable) and ``chaos`` (a
    :class:`~repro.launch.chaos.ChaosPlan`) apply only to the sharded
    path; the serial path has no workers to heal or to break.
    """
    if isinstance(machines, Machine):
        machines = [machines]
    assignments = assign_tasks(machines, options)
    if workers > 1 and use_mpi and len(machines) > 1:
        from repro.launch.sharded import launch_sharded, plan_shards

        if len(plan_shards(assignments, len(machines), workers)) >= 2:
            sharded_kwargs = {}
            if recovery is not _UNSET_RECOVERY:
                sharded_kwargs["recovery"] = recovery
            return launch_sharded(  # type: ignore[return-value]
                machines,
                options,
                app,
                workers=workers,
                use_mpi=use_mpi,
                helper_thread=helper_thread,
                monitor_factory=monitor_factory,
                fabric=fabric,
                timeslice=timeslice,
                smt_efficiency=smt_efficiency,
                epoch_ticks=epoch_ticks,
                chaos=chaos,
                **sharded_kwargs,
            )
    kernel = SimKernel(machines, timeslice=timeslice,
                       smt_efficiency=smt_efficiency)
    mpi = MpiJob(kernel, fabric=fabric) if use_mpi else None

    contexts: list[RankContext] = []
    monitors: list[_Monitor] = []
    for assignment in assignments:
        ctx = RankContext(
            rank=assignment.rank,
            size=options.ntasks,
            env=dict(options.env),
            assignment=assignment,
        )
        ctx.kernel = kernel
        node = kernel.nodes[assignment.node_index]
        proc = kernel.spawn_process(
            node,
            assignment.cpuset,
            app(ctx),
            command=options.command,
            env=dict(options.env),
            rank=assignment.rank if use_mpi else None,
        )
        ctx.process = proc
        if mpi is not None:
            ctx.comm = mpi.add_rank(assignment.rank, proc)
        ctx.omp = OpenMPRuntime(kernel, proc)
        ctx.gpus = [node.gpu(g) for g in assignment.gpu_physical]
        for visible, dev in enumerate(ctx.gpus):
            dev.info.visible_index = visible
        if helper_thread:
            kernel.spawn_thread(
                proc,
                _mpi_helper_behavior(),
                name="mpi-helper",
                affinity=node.machine.usable_cpuset(),
                roles={ThreadRole.OTHER},
                daemon=True,
            )
        contexts.append(ctx)

    if mpi is not None:
        mpi.finalize_ranks()

    # monitors last, so their sampling threads see the full world
    if monitor_factory is not None:
        for ctx in contexts:
            monitors.append(monitor_factory(ctx))

    return JobStep(
        kernel=kernel,
        options=options,
        assignments=assignments,
        contexts=contexts,
        mpi=mpi,
        monitors=monitors,
    )
