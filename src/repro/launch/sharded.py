"""Sharded multi-node simulation: one kernel worker per node group.

The serial launcher steps every node of a job inside one
:class:`~repro.kernel.scheduler.SimKernel`, so multi-node experiments
are bound by single-core throughput.  This module partitions the
simulated cluster *by node* across a pool of forked workers — each
worker owns a full sub-kernel (scheduler, LWPs, HWTs, GPUs, monitors)
over its node group — and runs them bulk-synchronously in fixed tick
**epochs**:

1. every worker steps its kernel to the epoch boundary ``E_k``
   (``SimKernel.run(until_tick=E_k)``);
2. at the barrier, workers hand the orchestrator their buffered
   cross-shard sends (:class:`~repro.mpi.fabric.RemoteEnvelope`),
   their new collective contributions, and their completion state;
3. the orchestrator sorts all envelopes by the serial kernel's global
   injection order ``(sent_tick, src_node, program order)``, routes
   them to the destination shards, and completes any collective every
   world rank has now joined;
4. workers re-inject the envelopes as arrival timers (their arrival
   ticks are exact — see below) and run the next epoch.

**Determinism.**  The epoch length is clamped to the fabric lookahead
``int(remote_latency)``: a cross-node message sent at tick ``t`` of
epoch *k* (``t >= S_k``) arrives no earlier than ``t + lookahead >=
S_k + L = E_k``, so handing it over at the barrier never misses its
arrival tick, and the sorted re-injection order matches the serial
kernel's timer order.  Point-to-point traffic is therefore delivered
at bit-identical ticks; per-rank PIDs are replayed via
``SimKernel.set_next_pid``; each shard's nodes keep their *global*
node indices.  Cross-shard **collectives** rendezvous through the
orchestrator and complete at the first barrier after the last arrival
— value-correct but epoch-quantized (serial-identical timing is only
guaranteed for jobs whose cross-node traffic is point-to-point).
Jittered fabrics draw latency noise from one shared RNG in global
send order and cannot be sharded.

**Crash containment.**  A worker that dies or hangs mid-epoch is
classified with the PR-3 failure taxonomy and recorded on a
:class:`~repro.collect.faults.DegradationLedger`; surviving shards are
finalized at the current epoch and the job returns partial results
instead of hanging.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DeadlockError, LaunchError
from repro.kernel.clock import Clock
from repro.kernel.lwp import ThreadRole
from repro.kernel.scheduler import SimKernel
from repro.launch.job import AppFactory, RankContext, _mpi_helper_behavior
from repro.launch.options import SrunOptions
from repro.launch.slurm import TaskAssignment
from repro.mpi.comm import ShardMpiJob
from repro.mpi.fabric import Fabric, RemoteEnvelope, ShardFabric
from repro.openmp.runtime import OpenMPRuntime
from repro.topology.objects import Machine

__all__ = [
    "ShardPlan",
    "RankResult",
    "ShardedJobStep",
    "plan_shards",
    "launch_sharded",
]

#: must match SimKernel's first_pid default — the serial PID layout
#: every shard replays
_FIRST_PID = 18300
#: PID base for dynamic spawns after launch (per-shard disjoint ranges)
_DYNAMIC_PID_STRIDE = 1_000_000


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of the cluster."""

    index: int
    node_indices: tuple[int, ...]  # global node indices, ascending
    ranks: tuple[int, ...]  # world ranks resident on those nodes


@dataclass
class RankResult:
    """Everything one rank's monitor produced, marshalled picklably."""

    rank: int
    pid: int
    hostname: str
    report: object = None  # UtilizationReport
    findings: object = None  # ContentionReport
    advice: object = None  # Advice
    summary: object = None  # RankSummary
    store: object = None  # SampleStore
    heartbeats: list = field(default_factory=list)
    crash_reports: list = field(default_factory=list)


def plan_shards(
    assignments: list[TaskAssignment], n_nodes: int, workers: int
) -> list[ShardPlan]:
    """Partition nodes into contiguous groups balanced by rank count.

    Contiguity keeps each group's nodes in serial walk order; balance
    is greedy on the cumulative rank count.  Nodes that received no
    ranks ride along with the current group.  Returns at most
    ``min(workers, nodes-with-ranks)`` shards, each with >= 1 rank.
    """
    if workers < 1:
        raise LaunchError("workers must be >= 1")
    per_node: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    for a in assignments:
        per_node[a.node_index].append(a.rank)
    loaded = sum(1 for ranks in per_node.values() if ranks)
    shards = min(workers, max(1, loaded))
    total = len(assignments)
    plans: list[ShardPlan] = []
    group_nodes: list[int] = []
    group_ranks: list[int] = []
    placed = 0
    for node in range(n_nodes):
        group_nodes.append(node)
        group_ranks.extend(per_node[node])
        placed += len(per_node[node])
        remaining_shards = shards - len(plans)
        # close the group once it reaches its proportional share, as
        # long as enough loaded nodes remain for the rest
        target = total * (len(plans) + 1) / shards
        loaded_ahead = sum(
            1 for n in range(node + 1, n_nodes) if per_node[n]
        )
        if (
            group_ranks
            and remaining_shards > 1
            and placed >= target - 1e-9
            and loaded_ahead >= remaining_shards - 1
        ):
            plans.append(
                ShardPlan(len(plans), tuple(group_nodes), tuple(group_ranks))
            )
            group_nodes, group_ranks = [], []
    if group_nodes:
        if group_ranks or not plans:
            plans.append(
                ShardPlan(len(plans), tuple(group_nodes), tuple(group_ranks))
            )
        else:
            # trailing rankless nodes ride with the last loaded group
            last = plans[-1]
            plans[-1] = ShardPlan(
                last.index,
                last.node_indices + tuple(group_nodes),
                last.ranks,
            )
    return plans


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Shard:
    """The in-worker world: one sub-kernel over the shard's nodes."""

    def __init__(
        self,
        plan: ShardPlan,
        machines: list[Machine],
        assignments: list[TaskAssignment],
        options: SrunOptions,
        app: AppFactory,
        *,
        use_mpi: bool,
        helper_thread: bool,
        monitor_factory: Optional[Callable],
        fabric_spec: dict,
        timeslice: int,
        smt_efficiency: float,
    ):
        self.plan = plan
        local_of = {g: i for i, g in enumerate(plan.node_indices)}
        kernel = SimKernel(
            [machines[g] for g in plan.node_indices],
            timeslice=timeslice,
            smt_efficiency=smt_efficiency,
        )
        # shards report traffic and build envelopes in global node terms
        for local, global_index in enumerate(plan.node_indices):
            kernel.nodes[local].node_index = global_index
        self.kernel = kernel
        self.options = options

        rank_node = {a.rank: a.node_index for a in assignments}
        self.job: Optional[ShardMpiJob] = None
        if use_mpi:
            fabric = ShardFabric(
                rank_node=rank_node, local_ranks=plan.ranks, **fabric_spec
            )
            self.job = ShardMpiJob(kernel, fabric, world_size=options.ntasks)

        local_assignments = [
            a for a in assignments if a.node_index in local_of
        ]
        stride = 2 if helper_thread else 1
        self.contexts: list[RankContext] = []
        self.monitors: list = []
        for assignment in local_assignments:
            ctx = RankContext(
                rank=assignment.rank,
                size=options.ntasks,
                env=dict(options.env),
                assignment=assignment,
            )
            ctx.kernel = kernel
            node = kernel.nodes[local_of[assignment.node_index]]
            # replay the serial launcher's PID layout for this rank
            kernel.set_next_pid(_FIRST_PID + stride * assignment.rank)
            proc = kernel.spawn_process(
                node,
                assignment.cpuset,
                app(ctx),
                command=options.command,
                env=dict(options.env),
                rank=assignment.rank if use_mpi else None,
            )
            ctx.process = proc
            if self.job is not None:
                ctx.comm = self.job.add_rank(assignment.rank, proc)
            ctx.omp = OpenMPRuntime(kernel, proc)
            ctx.gpus = [node.gpu(g) for g in assignment.gpu_physical]
            for visible, dev in enumerate(ctx.gpus):
                dev.info.visible_index = visible
            if helper_thread:
                kernel.spawn_thread(
                    proc,
                    _mpi_helper_behavior(),
                    name="mpi-helper",
                    affinity=node.machine.usable_cpuset(),
                    roles={ThreadRole.OTHER},
                    daemon=True,
                )
            self.contexts.append(ctx)

        if self.job is not None:
            self.job.finalize_ranks()

        if monitor_factory is not None:
            monitor_base = _FIRST_PID + stride * options.ntasks
            for ctx in self.contexts:
                kernel.set_next_pid(monitor_base + ctx.rank)
                self.monitors.append(monitor_factory(ctx))

        # post-launch dynamic spawns (if any) get a per-shard range that
        # cannot collide with any rank's static PIDs
        kernel.set_next_pid(_FIRST_PID + _DYNAMIC_PID_STRIDE * (plan.index + 1))

    # -- epoch protocol --------------------------------------------------
    def admit(self, env: RemoteEnvelope) -> None:
        """Register one cross-shard arrival as a local timer."""
        assert self.job is not None
        comm = self.job.comms.get(env.dst_rank)
        if comm is None:
            return  # destination rank vanished (degraded run)
        message = env.message
        when = max(env.arrival_tick, self.kernel.now)

        def arrive(k: SimKernel) -> None:
            message.recv_tick = k.now
            comm._on_arrival(k, message)

        self.kernel.call_at(when, arrive)

    def run_epoch(
        self, until: int, inbound: list[RemoteEnvelope], completions: list[dict]
    ) -> dict:
        kernel = self.kernel
        if self.job is not None:
            for c in completions:
                self.job.complete_collective(
                    kernel, c["kind"], c["seq"], c["data"]
                )
            for env in inbound:
                self.admit(env)
        if kernel.alive_work():
            kernel.run(
                max_ticks=max(1, until - kernel.clock.tick),
                until_tick=until,
                raise_on_stall=False,
            )
        reply = {
            "clock": kernel.clock.tick,
            "done": not kernel.alive_work(),
            "stalled": kernel.stalled(),
            "outbox": (
                self.job.fabric.drain_outbox() if self.job is not None else []
            ),
            "contributions": (
                self.job.collect_coll_contributions()
                if self.job is not None
                else []
            ),
        }
        return reply

    def finish(self, end_tick: int) -> dict:
        """Align to the global end tick, finalize monitors, marshal."""
        kernel = self.kernel
        if kernel.clock.tick < end_tick:
            if kernel.alive_work():
                # degraded abort: best-effort idle-through to the end
                kernel.run(
                    max_ticks=end_tick - kernel.clock.tick,
                    until_tick=end_tick,
                    raise_on_stall=False,
                )
                if kernel.clock.tick < end_tick and kernel._quiescent():
                    kernel._fast_forward_to(end_tick)
            elif kernel._quiescent():
                kernel._fast_forward_to(end_tick)
        for monitor in self.monitors:
            monitor.finalize()
        return self._marshal()

    def _marshal(self) -> dict:
        from repro.analysis.cluster_view import node_mem_used_frac, rank_summary
        from repro.core.advisor import advise
        from repro.core.contention import analyze
        from repro.core.reports import build_report

        ranks: dict[int, RankResult] = {}
        p2p_bytes = None
        p2p_messages = None
        for ctx, monitor in zip(self.contexts, self.monitors):
            report = build_report(monitor)
            result = RankResult(
                rank=ctx.rank,
                pid=ctx.process.pid,
                hostname=report.hostname,
                report=report,
                findings=analyze(monitor, report),
                advice=advise(monitor, self.options),
                summary=rank_summary(monitor, report),
                store=monitor.store,
                heartbeats=list(monitor.heartbeats),
                crash_reports=list(monitor.crash_reports),
            )
            ranks[ctx.rank] = result
            if monitor.recorder is not None:
                if p2p_bytes is None:
                    p2p_bytes = monitor.recorder.bytes.copy()
                    p2p_messages = monitor.recorder.messages.copy()
                else:
                    p2p_bytes += monitor.recorder.bytes
                    p2p_messages += monitor.recorder.messages
        if not self.monitors:
            for ctx in self.contexts:
                ranks[ctx.rank] = RankResult(
                    rank=ctx.rank,
                    pid=ctx.process.pid,
                    hostname=ctx.process.node.hostname,
                )
        node_mem = {}
        for monitor in self.monitors:
            node_mem.setdefault(
                monitor.process.node.hostname, node_mem_used_frac(monitor)
            )
        return {
            "clock": self.kernel.clock.tick,
            "ranks": ranks,
            "node_mem": node_mem,
            "p2p_bytes": p2p_bytes,
            "p2p_messages": p2p_messages,
            "traffic": (
                dict(self.job.fabric.traffic) if self.job is not None else {}
            ),
        }


def _worker_main(conn, build: Callable[[], _Shard]) -> None:
    """Worker process entry: build the shard, serve barrier commands."""
    try:
        shard = build()
        while True:
            try:
                cmd = conn.recv()
            except EOFError:
                return  # orchestrator went away
            if cmd[0] == "epoch":
                _, until, inbound, completions = cmd
                conn.send(("epoch", shard.run_epoch(until, inbound, completions)))
            elif cmd[0] == "finish":
                conn.send(("results", shard.finish(cmd[1])))
                return
            else:  # pragma: no cover - protocol error
                raise LaunchError(f"unknown shard command {cmd[0]!r}")
    except BaseException as exc:
        try:
            conn.send(
                ("error", {"exc": repr(exc), "traceback": traceback.format_exc()})
            )
        except Exception:
            pass
        os._exit(1)


# ----------------------------------------------------------------------
# orchestrator side
# ----------------------------------------------------------------------
class ShardedJobStep:
    """A sharded job: mirrors :class:`~repro.launch.job.JobStep`.

    ``run()`` drives the epoch barrier loop *and* finalizes the
    workers (remote monitors cannot be flushed lazily), so
    ``finalize()`` is a no-op kept for call-site compatibility.
    Results — reports, findings, advice, stores, the P2P matrix — are
    computed inside the workers and marshalled back.
    """

    def __init__(
        self,
        plans: list[ShardPlan],
        options: SrunOptions,
        assignments: list[TaskAssignment],
        epoch_ticks: int,
        *,
        has_monitors: bool,
        epoch_timeout: Optional[float],
    ):
        self.plans = plans
        self.options = options
        self.assignments = assignments
        self.epoch_ticks = epoch_ticks
        self.has_monitors = has_monitors
        self.epoch_timeout = epoch_timeout
        # lazy: repro.collect pulls in repro.core, which imports launch
        from repro.collect.faults import DegradationLedger

        self.monitors: list = []  # parity with JobStep; always empty
        self.ticks_run = 0
        self.ledger = DegradationLedger()
        self._procs: list = []
        self._conns: list = []
        self._results: Optional[dict[int, RankResult]] = None
        self._node_mem: dict[str, float] = {}
        self._traffic: dict[tuple[int, int], int] = {}
        self._p2p_bytes = None
        self._p2p_messages = None
        self._shard_of_rank = {
            r: p.index for p in plans for r in p.ranks
        }
        self._hz = Clock().hz

    # -- lifecycle -------------------------------------------------------
    def _attach(self, procs, conns) -> None:
        self._procs = procs
        self._conns = conns

    def _recv(self, shard: int):
        """One reply from a worker; None means the worker is lost."""
        conn = self._conns[shard]
        try:
            if self.epoch_timeout is not None and not conn.poll(
                self.epoch_timeout
            ):
                raise TimeoutError(
                    f"shard {shard} missed the epoch barrier after "
                    f"{self.epoch_timeout:g}s"
                )
            msg = conn.recv()
        except (EOFError, OSError, TimeoutError) as exc:
            self._degrade(shard, exc)
            return None
        if msg[0] == "error":
            exc = RuntimeError(msg[1]["exc"] + "\n" + msg[1]["traceback"])
            self._degrade(shard, exc)
            return None
        return msg[1]

    def _degrade(self, shard: int, exc: BaseException) -> None:
        """Contain one lost worker: ledger it, reap the process."""
        from repro.collect.faults import PERMANENT, classify_failure

        plan = self.plans[shard]
        failure_class = classify_failure(exc) or PERMANENT
        self.ledger.record_failure(
            f"shard-{shard}",
            tick=float(self.ticks_run),
            reason=(
                f"worker for nodes {list(plan.node_indices)} "
                f"(ranks {list(plan.ranks)}) lost: {exc}"
            ),
            failure_class=failure_class,
        )
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
        try:
            self._conns[shard].close()
        except OSError:
            pass

    def close(self) -> None:
        """Reap every worker (idempotent)."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the epoch barrier loop ------------------------------------------
    def run(self, max_ticks: int = 10_000_000, raise_on_stall: bool = True) -> int:
        """Drive all shards to completion; returns elapsed ticks."""
        if self._results is not None:
            return self.ticks_run
        L = self.epoch_ticks
        n = len(self.plans)
        active = [i for i in range(n)]
        lost: set[int] = set()
        clocks = [0] * n
        inbound: dict[int, list[RemoteEnvelope]] = {i: [] for i in range(n)}
        completions: dict[int, list[dict]] = {i: [] for i in range(n)}
        colls: dict[tuple[str, int], dict] = {}
        world = self.options.ntasks
        boundary = 0
        aborted = False

        while active and boundary < max_ticks:
            boundary = min(boundary + L, max_ticks)
            for shard in active:
                self._conns[shard].send(
                    ("epoch", boundary, inbound[shard], completions[shard])
                )
                inbound[shard] = []
                completions[shard] = []
            replies: dict[int, dict] = {}
            for shard in list(active):
                reply = self._recv(shard)
                if reply is None:
                    active.remove(shard)
                    lost.add(shard)
                    aborted = True
                    continue
                replies[shard] = reply
                clocks[shard] = reply["clock"]
            if aborted:
                break

            # route cross-shard messages in serial injection order
            envelopes: list[RemoteEnvelope] = []
            for reply in replies.values():
                envelopes.extend(reply["outbox"])
            envelopes.sort(key=RemoteEnvelope.sort_key)
            routed = 0
            for env in envelopes:
                dst = self._shard_of_rank.get(env.dst_rank)
                if dst is not None and dst not in lost:
                    inbound[dst].append(env)
                    routed += 1

            # merge collective contributions; complete full rendezvous
            completed = 0
            for shard, reply in replies.items():
                for c in reply["contributions"]:
                    key = (c["kind"], c["seq"])
                    g = colls.setdefault(key, {"joined": 0, "data": {}})
                    g["joined"] += c["joined"]
                    g["data"].update(c["data"])
            for key in sorted(colls):
                g = colls[key]
                if g["joined"] >= world and not g.get("done"):
                    g["done"] = True
                    completed += 1
                    for shard in active:
                        completions[shard].append(
                            {"kind": key[0], "seq": key[1], "data": g["data"]}
                        )

            for shard in list(active):
                if replies[shard]["done"]:
                    active.remove(shard)

            if (
                active
                and routed == 0
                and completed == 0
                and not any(inbound[s] for s in active)
                and all(replies[s]["stalled"] for s in active)
            ):
                if raise_on_stall:
                    self.close()
                    raise DeadlockError(
                        f"sharded simulation stalled at tick {boundary}; "
                        f"stalled shards: {sorted(active)}"
                    )
                break

        end_tick = max(clocks) if clocks else 0
        self.ticks_run = end_tick
        self._collect(end_tick, lost)
        return self.ticks_run

    def _collect(self, end_tick: int, lost: set[int]) -> None:
        results: dict[int, RankResult] = {}
        for shard in range(len(self.plans)):
            if shard in lost:
                continue
            try:
                self._conns[shard].send(("finish", end_tick))
            except (OSError, ValueError) as exc:
                self._degrade(shard, exc)
                continue
            reply = self._recv(shard)
            if reply is None:
                continue
            results.update(reply["ranks"])
            self._node_mem.update(reply["node_mem"])
            for key, nbytes in reply["traffic"].items():
                self._traffic[key] = self._traffic.get(key, 0) + nbytes
            if reply["p2p_bytes"] is not None:
                if self._p2p_bytes is None:
                    self._p2p_bytes = reply["p2p_bytes"]
                    self._p2p_messages = reply["p2p_messages"]
                else:
                    self._p2p_bytes += reply["p2p_bytes"]
                    self._p2p_messages += reply["p2p_messages"]
        self._results = results
        self.close()

    def finalize(self) -> None:
        """No-op: workers finalize their monitors inside ``run()``."""

    # -- result accessors (JobStep parity) -------------------------------
    @property
    def degradations(self) -> list:
        """Worker-loss events recorded during the run."""
        return list(self.ledger.events)

    def _result(self, rank: int) -> RankResult:
        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        result = self._results.get(rank)
        if result is None:
            raise LaunchError(
                f"no results for rank {rank} (its shard was lost or the "
                "rank does not exist)"
            )
        return result

    def monitor(self, rank: int = 0):
        """Unavailable on sharded jobs: monitors live in the workers."""
        raise LaunchError(
            "sharded jobs marshal results instead of live monitors; use "
            "report()/findings()/advice()/store() or cluster_view()"
        )

    def store(self, rank: int = 0):
        """The marshalled SampleStore of one rank."""
        result = self._require_monitored(rank)
        return result.store

    def _require_monitored(self, rank: int) -> RankResult:
        result = self._result(rank)
        if result.report is None:
            raise LaunchError("job was launched without monitors")
        return result

    def report(self, rank: int = 0):
        """Utilization report for one rank (Listing 2 layout)."""
        return self._require_monitored(rank).report

    def findings(self, rank: int = 0):
        """Contention/misconfiguration findings for one rank."""
        return self._require_monitored(rank).findings

    def advice(self, rank: int = 0):
        """Launch-configuration advice derived from one rank's run."""
        return self._require_monitored(rank).advice

    def heartbeats(self, rank: int = 0) -> list:
        """Heartbeat lines emitted by one rank's monitor."""
        return self._require_monitored(rank).heartbeats

    def comm_matrix(self):
        """The merged point-to-point bytes matrix (Figure 5 input)."""
        from repro.core.heatmap import CommMatrix
        from repro.errors import MonitorError

        if self._p2p_bytes is None:
            raise MonitorError("no monitor carries MPI point-to-point data")
        out = CommMatrix.zeros(self._p2p_bytes.shape[0])
        out.bytes += self._p2p_bytes
        out.messages += self._p2p_messages
        return out

    def cluster_view(self):
        """The allocation-wide view, merged across shards."""
        from repro.analysis.cluster_view import assemble_cluster_view

        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        summaries = [
            r.summary for r in self._results.values() if r.summary is not None
        ]
        return assemble_cluster_view(summaries, dict(self._node_mem))

    @property
    def rank_results(self) -> dict[int, RankResult]:
        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        return dict(self._results)

    @property
    def traffic(self) -> dict[tuple[int, int], int]:
        """Accepted bytes per (src_node, dst_node), merged across shards."""
        return dict(self._traffic)

    @property
    def duration_seconds(self) -> float:
        return self.ticks_run / self._hz


def _fabric_spec(fabric: Optional[Fabric]) -> dict:
    f = fabric or Fabric()
    if f.jitter > 0:
        raise LaunchError(
            "sharded execution requires a jitter-free fabric (jitter "
            "draws are ordered by the global send sequence)"
        )
    if int(f.remote_latency) < 1:
        raise LaunchError(
            "sharded execution needs remote_latency >= 1 tick of lookahead"
        )
    return {
        "local_latency": f.local_latency,
        "remote_latency": f.remote_latency,
        "local_bandwidth": f.local_bandwidth,
        "remote_bandwidth": f.remote_bandwidth,
        "jitter": f.jitter,
        "seed": f.seed,
    }


def launch_sharded(
    machines: list[Machine],
    options: SrunOptions,
    app: AppFactory,
    *,
    workers: int,
    use_mpi: bool = True,
    helper_thread: bool = True,
    monitor_factory: Optional[Callable] = None,
    fabric: Optional[Fabric] = None,
    timeslice: int = 3,
    smt_efficiency: float = 1.0,
    epoch_ticks: Optional[int] = None,
    epoch_timeout: Optional[float] = 120.0,
) -> ShardedJobStep:
    """Build the sharded world for one job step (does not run it).

    Workers are forked immediately so they inherit ``machines``, the
    app factory, and the monitor factory without pickling; the epoch
    loop starts on :meth:`ShardedJobStep.run`.
    """
    from repro.launch.slurm import assign_tasks

    if "fork" not in multiprocessing.get_all_start_methods():
        raise LaunchError(
            "sharded execution needs the fork start method (POSIX only)"
        )
    # warm the marshalling imports before forking: children inherit the
    # loaded modules instead of each paying the import chain at finish
    import repro.analysis.cluster_view  # noqa: F401
    import repro.core.advisor  # noqa: F401
    import repro.core.contention  # noqa: F401
    import repro.core.reports  # noqa: F401
    spec = _fabric_spec(fabric)
    lookahead = int(spec["remote_latency"])
    epoch = min(epoch_ticks or lookahead, lookahead)
    if epoch < 1:
        raise LaunchError("epoch_ticks must be >= 1")

    assignments = assign_tasks(machines, options)
    plans = plan_shards(assignments, len(machines), workers)
    if len(plans) < 2:
        raise LaunchError(
            "sharded execution needs >= 2 node groups; use the serial "
            "launcher for single-node jobs"
        )

    step = ShardedJobStep(
        plans,
        options,
        assignments,
        epoch,
        has_monitors=monitor_factory is not None,
        epoch_timeout=epoch_timeout,
    )
    ctx = multiprocessing.get_context("fork")
    procs = []
    conns = []
    for plan in plans:
        parent_conn, child_conn = ctx.Pipe(duplex=True)

        def build(plan=plan) -> _Shard:
            return _Shard(
                plan,
                machines,
                assignments,
                options,
                app,
                use_mpi=use_mpi,
                helper_thread=helper_thread,
                monitor_factory=monitor_factory,
                fabric_spec=spec,
                timeslice=timeslice,
                smt_efficiency=smt_efficiency,
            )

        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, build),
            name=f"zerosum-shard-{plan.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        procs.append(proc)
        conns.append(parent_conn)
    step._attach(procs, conns)
    return step
