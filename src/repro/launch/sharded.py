"""Sharded multi-node simulation: one kernel worker per node group.

The serial launcher steps every node of a job inside one
:class:`~repro.kernel.scheduler.SimKernel`, so multi-node experiments
are bound by single-core throughput.  This module partitions the
simulated cluster *by node* across a pool of forked workers — each
worker owns a full sub-kernel (scheduler, LWPs, HWTs, GPUs, monitors)
over its node group — and runs them bulk-synchronously in fixed tick
**epochs**:

1. every worker steps its kernel to the epoch boundary ``E_k``
   (``SimKernel.run(until_tick=E_k)``);
2. at the barrier, workers hand the orchestrator their buffered
   cross-shard sends (:class:`~repro.mpi.fabric.RemoteEnvelope`),
   their new collective contributions, and their completion state;
3. the orchestrator sorts all envelopes by the serial kernel's global
   injection order ``(sent_tick, src_node, program order)``, routes
   them to the destination shards, and completes any collective every
   world rank has now joined;
4. workers re-inject the envelopes as arrival timers (their arrival
   ticks are exact — see below) and run the next epoch.

**Determinism.**  The epoch length is clamped to the fabric lookahead
``int(remote_latency)``: a cross-node message sent at tick ``t`` of
epoch *k* (``t >= S_k``) arrives no earlier than ``t + lookahead >=
S_k + L = E_k``, so handing it over at the barrier never misses its
arrival tick, and the sorted re-injection order matches the serial
kernel's timer order.  Point-to-point traffic is therefore delivered
at bit-identical ticks; per-rank PIDs are replayed via
``SimKernel.set_next_pid``; each shard's nodes keep their *global*
node indices.  Cross-shard **collectives** rendezvous through the
orchestrator and complete at the first barrier after the last arrival
— value-correct but epoch-quantized (serial-identical timing is only
guaranteed for jobs whose cross-node traffic is point-to-point).
Jittered fabrics draw latency noise from one shared RNG in global
send order and cannot be sharded.

**Self-healing.**  With a :class:`~repro.launch.checkpoint.
RecoveryPolicy` (the default), the step heals worker loss instead of
merely containing it.  Kernel state is a web of live generators that
no serializer can capture, so the restart substrate is the process
image itself: every K epochs a worker forks a frozen **hot spare** of
itself that blocks on a pre-created slot pipe, and marshals a
:class:`~repro.launch.checkpoint.ShardCheckpoint` (state fingerprint
+ ZSJ2-encoded per-rank stores) to the orchestrator.  Spares retire
make-before-break: the predecessor clone is killed only after its
replacement's checkpoint is on the wire, so a ``kill -9`` landing
anywhere — even mid-checkpoint — leaves one promotable spare, and the
brief two-generation overlap on the slot pipe is resolved at adoption
by an epoch handshake that migrates the command channel to a fresh
slot (the ``ckpt_kill`` chaos kind drills exactly this window).  On
worker loss
the orchestrator promotes the spare (or, before the first checkpoint,
re-forks a pristine worker from the build closure), verifies its
fingerprint, and replays the epoch commands recorded since the
checkpoint from a bounded :class:`~repro.mpi.fabric.EpochReplayBuffer`
— workers are deterministic, so the merged run stays bit-identical to
a fault-free one for P2P workloads.  Liveness is discriminated, not
guessed: workers heartbeat over the pipe, an EWMA deadline over
observed epoch durations (:class:`~repro.live.watchdog.
DeadlineEstimator`) separates *straggler* (past deadline, heartbeats
healthy → wait and note) from *hang* (heartbeat silence → terminate
and respawn) from *death* (EOF / reaped exit → respawn).  Respawns
are budgeted with backoff; an exhausted budget falls back to the
degrade-and-continue path below.  The deterministic fault injector in
:mod:`repro.launch.chaos` drives all of this under test.

**Crash containment.**  A worker that dies or hangs beyond recovery
is classified with the PR-3 failure taxonomy and recorded on a
:class:`~repro.collect.faults.DegradationLedger` (reason strings name
``hung:`` vs ``crashed:``); surviving shards are finalized at the
current epoch and the job returns partial results instead of hanging.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import DeadlockError, LaunchError
from repro.kernel.clock import Clock
from repro.kernel.lwp import ThreadRole
from repro.kernel.scheduler import SimKernel
from repro.launch.chaos import ChaosPlan
from repro.launch.checkpoint import RecoveryPolicy, ShardCheckpoint
from repro.launch.job import AppFactory, RankContext, _mpi_helper_behavior
from repro.launch.options import SrunOptions
from repro.launch.slurm import TaskAssignment
from repro.mpi.comm import ShardMpiJob
from repro.mpi.fabric import EpochReplayBuffer, Fabric, RemoteEnvelope, ShardFabric
from repro.openmp.runtime import OpenMPRuntime
from repro.topology.objects import Machine

__all__ = [
    "ShardPlan",
    "RankResult",
    "ShardedJobStep",
    "plan_shards",
    "launch_sharded",
]

#: must match SimKernel's first_pid default — the serial PID layout
#: every shard replays
_FIRST_PID = 18300
#: PID base for dynamic spawns after launch (per-shard disjoint ranges)
_DYNAMIC_PID_STRIDE = 1_000_000

#: the default self-healing policy (frozen, so sharing one is safe)
_DEFAULT_RECOVERY = RecoveryPolicy()


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice of the cluster."""

    index: int
    node_indices: tuple[int, ...]  # global node indices, ascending
    ranks: tuple[int, ...]  # world ranks resident on those nodes


@dataclass
class RankResult:
    """Everything one rank's monitor produced, marshalled picklably."""

    rank: int
    pid: int
    hostname: str
    report: object = None  # UtilizationReport
    findings: object = None  # ContentionReport
    advice: object = None  # Advice
    summary: object = None  # RankSummary
    store: object = None  # SampleStore
    heartbeats: list = field(default_factory=list)
    crash_reports: list = field(default_factory=list)


def plan_shards(
    assignments: list[TaskAssignment], n_nodes: int, workers: int
) -> list[ShardPlan]:
    """Partition nodes into contiguous groups balanced by rank count.

    Contiguity keeps each group's nodes in serial walk order; balance
    is greedy on the cumulative rank count.  Nodes that received no
    ranks ride along with the current group.  Returns at most
    ``min(workers, nodes-with-ranks)`` shards, each with >= 1 rank.
    """
    if workers < 1:
        raise LaunchError("workers must be >= 1")
    per_node: dict[int, list[int]] = {i: [] for i in range(n_nodes)}
    for a in assignments:
        per_node[a.node_index].append(a.rank)
    loaded = sum(1 for ranks in per_node.values() if ranks)
    shards = min(workers, max(1, loaded))
    total = len(assignments)
    plans: list[ShardPlan] = []
    group_nodes: list[int] = []
    group_ranks: list[int] = []
    placed = 0
    for node in range(n_nodes):
        group_nodes.append(node)
        group_ranks.extend(per_node[node])
        placed += len(per_node[node])
        remaining_shards = shards - len(plans)
        # close the group once it reaches its proportional share, as
        # long as enough loaded nodes remain for the rest
        target = total * (len(plans) + 1) / shards
        loaded_ahead = sum(
            1 for n in range(node + 1, n_nodes) if per_node[n]
        )
        if (
            group_ranks
            and remaining_shards > 1
            and placed >= target - 1e-9
            and loaded_ahead >= remaining_shards - 1
        ):
            plans.append(
                ShardPlan(len(plans), tuple(group_nodes), tuple(group_ranks))
            )
            group_nodes, group_ranks = [], []
    if group_nodes:
        if group_ranks or not plans:
            plans.append(
                ShardPlan(len(plans), tuple(group_nodes), tuple(group_ranks))
            )
        else:
            # trailing rankless nodes ride with the last loaded group
            last = plans[-1]
            plans[-1] = ShardPlan(
                last.index,
                last.node_indices + tuple(group_nodes),
                last.ranks,
            )
    return plans


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _Shard:
    """The in-worker world: one sub-kernel over the shard's nodes."""

    def __init__(
        self,
        plan: ShardPlan,
        machines: list[Machine],
        assignments: list[TaskAssignment],
        options: SrunOptions,
        app: AppFactory,
        *,
        use_mpi: bool,
        helper_thread: bool,
        monitor_factory: Optional[Callable],
        fabric_spec: dict,
        timeslice: int,
        smt_efficiency: float,
    ):
        self.plan = plan
        local_of = {g: i for i, g in enumerate(plan.node_indices)}
        kernel = SimKernel(
            [machines[g] for g in plan.node_indices],
            timeslice=timeslice,
            smt_efficiency=smt_efficiency,
        )
        # shards report traffic and build envelopes in global node terms
        for local, global_index in enumerate(plan.node_indices):
            kernel.nodes[local].node_index = global_index
        self.kernel = kernel
        self.options = options

        rank_node = {a.rank: a.node_index for a in assignments}
        self.job: Optional[ShardMpiJob] = None
        if use_mpi:
            fabric = ShardFabric(
                rank_node=rank_node, local_ranks=plan.ranks, **fabric_spec
            )
            self.job = ShardMpiJob(kernel, fabric, world_size=options.ntasks)

        local_assignments = [
            a for a in assignments if a.node_index in local_of
        ]
        stride = 2 if helper_thread else 1
        self.contexts: list[RankContext] = []
        self.monitors: list = []
        for assignment in local_assignments:
            ctx = RankContext(
                rank=assignment.rank,
                size=options.ntasks,
                env=dict(options.env),
                assignment=assignment,
            )
            ctx.kernel = kernel
            node = kernel.nodes[local_of[assignment.node_index]]
            # replay the serial launcher's PID layout for this rank
            kernel.set_next_pid(_FIRST_PID + stride * assignment.rank)
            proc = kernel.spawn_process(
                node,
                assignment.cpuset,
                app(ctx),
                command=options.command,
                env=dict(options.env),
                rank=assignment.rank if use_mpi else None,
            )
            ctx.process = proc
            if self.job is not None:
                ctx.comm = self.job.add_rank(assignment.rank, proc)
            ctx.omp = OpenMPRuntime(kernel, proc)
            ctx.gpus = [node.gpu(g) for g in assignment.gpu_physical]
            for visible, dev in enumerate(ctx.gpus):
                dev.info.visible_index = visible
            if helper_thread:
                kernel.spawn_thread(
                    proc,
                    _mpi_helper_behavior(),
                    name="mpi-helper",
                    affinity=node.machine.usable_cpuset(),
                    roles={ThreadRole.OTHER},
                    daemon=True,
                )
            self.contexts.append(ctx)

        if self.job is not None:
            self.job.finalize_ranks()

        if monitor_factory is not None:
            monitor_base = _FIRST_PID + stride * options.ntasks
            for ctx in self.contexts:
                kernel.set_next_pid(monitor_base + ctx.rank)
                self.monitors.append(monitor_factory(ctx))

        # post-launch dynamic spawns (if any) get a per-shard range that
        # cannot collide with any rank's static PIDs
        kernel.set_next_pid(_FIRST_PID + _DYNAMIC_PID_STRIDE * (plan.index + 1))

    # -- epoch protocol --------------------------------------------------
    def admit(self, env: RemoteEnvelope) -> None:
        """Register one cross-shard arrival as a local timer."""
        assert self.job is not None
        comm = self.job.comms.get(env.dst_rank)
        if comm is None:
            return  # destination rank vanished (degraded run)
        message = env.message
        when = max(env.arrival_tick, self.kernel.now)

        def arrive(k: SimKernel) -> None:
            message.recv_tick = k.now
            comm._on_arrival(k, message)

        self.kernel.call_at(when, arrive)

    def run_epoch(
        self, until: int, inbound: list[RemoteEnvelope], completions: list[dict]
    ) -> dict:
        kernel = self.kernel
        if self.job is not None:
            for c in completions:
                self.job.complete_collective(
                    kernel, c["kind"], c["seq"], c["data"]
                )
            for env in inbound:
                self.admit(env)
        if kernel.alive_work():
            kernel.run(
                max_ticks=max(1, until - kernel.clock.tick),
                until_tick=until,
                raise_on_stall=False,
            )
        reply = {
            "clock": kernel.clock.tick,
            "done": not kernel.alive_work(),
            "stalled": kernel.stalled(),
            "outbox": (
                self.job.fabric.drain_outbox() if self.job is not None else []
            ),
            "contributions": (
                self.job.collect_coll_contributions()
                if self.job is not None
                else []
            ),
        }
        return reply

    def fingerprint(self) -> int:
        """crc32 digest of the scheduler-visible state at this boundary.

        Cheap on purpose: it exists to catch a promoted spare whose
        memory image is not the boundary the orchestrator thinks it is
        (wrong slot answered, stale clone), not to detect arbitrary
        corruption.  Covers every LWP's scheduling-relevant fields and
        the clock.
        """
        h = zlib.crc32(repr(self.kernel.clock.tick).encode())
        for tid in sorted(self.kernel.lwps):
            lwp = self.kernel.lwps[tid]
            h = zlib.crc32(
                f"{tid}:{lwp.state.value}:{lwp.utime!r}:"
                f"{lwp.stime!r}:{lwp.nvcsw}".encode(),
                h,
            )
        return h

    def store_blobs(self) -> dict[int, bytes]:
        """Per-rank SampleStores, ZSJ2-encoded for the checkpoint."""
        from repro.collect.journal import encode_store_snapshot

        return {
            ctx.rank: encode_store_snapshot(monitor.store)
            for ctx, monitor in zip(self.contexts, self.monitors)
        }

    def finish(self, end_tick: int) -> dict:
        """Align to the global end tick, finalize monitors, marshal."""
        kernel = self.kernel
        if kernel.clock.tick < end_tick:
            if kernel.alive_work():
                # degraded abort: best-effort idle-through to the end
                kernel.run(
                    max_ticks=end_tick - kernel.clock.tick,
                    until_tick=end_tick,
                    raise_on_stall=False,
                )
                if kernel.clock.tick < end_tick and kernel._quiescent():
                    kernel._fast_forward_to(end_tick)
            elif kernel._quiescent():
                kernel._fast_forward_to(end_tick)
        for monitor in self.monitors:
            monitor.finalize()
        return self._marshal()

    def _marshal(self) -> dict:
        from repro.analysis.cluster_view import node_mem_used_frac, rank_summary
        from repro.core.advisor import advise
        from repro.core.contention import analyze
        from repro.core.reports import build_report

        ranks: dict[int, RankResult] = {}
        p2p_bytes = None
        p2p_messages = None
        for ctx, monitor in zip(self.contexts, self.monitors):
            report = build_report(monitor)
            result = RankResult(
                rank=ctx.rank,
                pid=ctx.process.pid,
                hostname=report.hostname,
                report=report,
                findings=analyze(monitor, report),
                advice=advise(monitor, self.options),
                summary=rank_summary(monitor, report),
                store=monitor.store,
                heartbeats=list(monitor.heartbeats),
                crash_reports=list(monitor.crash_reports),
            )
            ranks[ctx.rank] = result
            if monitor.recorder is not None:
                if p2p_bytes is None:
                    p2p_bytes = monitor.recorder.bytes.copy()
                    p2p_messages = monitor.recorder.messages.copy()
                else:
                    p2p_bytes += monitor.recorder.bytes
                    p2p_messages += monitor.recorder.messages
        if not self.monitors:
            for ctx in self.contexts:
                ranks[ctx.rank] = RankResult(
                    rank=ctx.rank,
                    pid=ctx.process.pid,
                    hostname=ctx.process.node.hostname,
                )
        node_mem = {}
        for monitor in self.monitors:
            node_mem.setdefault(
                monitor.process.node.hostname, node_mem_used_frac(monitor)
            )
        return {
            "clock": self.kernel.clock.tick,
            "ranks": ranks,
            "node_mem": node_mem,
            "p2p_bytes": p2p_bytes,
            "p2p_messages": p2p_messages,
            "traffic": (
                dict(self.job.fabric.traffic) if self.job is not None else {}
            ),
        }


class _WorkerState:
    """Worker-process plumbing shared by the serve loop and the spare.

    Owns the command connection (which changes identity when a spare
    is promoted — the slot pipe becomes the command channel), the
    send lock serializing the heartbeat thread against replies, and
    the current hot-spare pid.
    """

    def __init__(self, conn, slots, hb_interval: Optional[float]):
        self.conn = conn
        self.slots = slots
        self.hb_interval = hb_interval
        self.send_lock = threading.Lock()
        self.hb_stop = threading.Event()
        self.kernel: Optional[SimKernel] = None
        self.spare_pid: Optional[int] = None
        self._hb_thread: Optional[threading.Thread] = None
        #: chaos drill: die mid-checkpoint at the next boundary
        self.die_in_checkpoint = False

    def send(self, msg) -> None:
        with self.send_lock:
            self.conn.send(msg)

    def send_bytes(self, raw: bytes) -> None:
        with self.send_lock:
            self.conn.send_bytes(raw)

    # -- heartbeats ------------------------------------------------------
    def start_heartbeats(self) -> None:
        if self.hb_interval is None or self._hb_thread is not None:
            return
        self.hb_stop = threading.Event()
        thread = threading.Thread(
            target=self._hb_loop, name="shard-heartbeat", daemon=True
        )
        self._hb_thread = thread
        thread.start()

    def stop_heartbeats(self) -> None:
        """Quiesce the heartbeat thread (fork safety, chaos hangs)."""
        thread = self._hb_thread
        if thread is None:
            return
        self.hb_stop.set()
        thread.join()
        self._hb_thread = None

    def _hb_loop(self) -> None:
        while not self.hb_stop.wait(self.hb_interval):
            kernel = self.kernel
            tick = kernel.clock.tick if kernel is not None else 0
            try:
                self.send(("hb", time.monotonic(), tick))
            except (OSError, ValueError):
                return  # orchestrator went away; the serve loop will see EOF


def _chaos_hang(state: _WorkerState, directive: dict) -> None:
    """Wedge this worker: no heartbeats, no progress, maybe no SIGTERM."""
    state.stop_heartbeats()
    if directive.get("ignore_term"):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:  # pragma: no cover - killed externally
        time.sleep(3600)


def _spare_wait(
    shard: _Shard, state: _WorkerState, slot_index: int, epoch_no: int
) -> None:
    """The hot spare's life: block on the slot pipe until promoted.

    Runs in the forked child.  The parent held no locks across the
    fork (heartbeats are stopped first), but the lock objects are
    recreated anyway so no stale state leaks into the clone.  Returns
    only on adoption — the caller then re-enters the serve loop with
    the slot pipe as the command channel; any other outcome exits.
    """
    state.send_lock = threading.Lock()
    state.hb_stop = threading.Event()
    state._hb_thread = None
    state.spare_pid = None
    state.die_in_checkpoint = False
    retired = [state.conn] + list(state.slots[:slot_index])
    state.conn = state.slots[slot_index]
    for conn in retired:
        try:
            conn.close()
        except (OSError, ValueError):
            pass
    try:
        cmd = state.conn.recv()
    except (EOFError, OSError):
        os._exit(0)  # orchestrator closed the slot: run over, not needed
    if not (isinstance(cmd, tuple) and len(cmd) == 3 and cmd[0] == "adopt"):
        os._exit(0)
    _, expected_epoch, fresh_index = cmd
    if expected_epoch != epoch_no:
        # the adopt names the other generation briefly sharing this
        # slot (make-before-break overlap in _do_checkpoint): bounce
        # on the fresh channel and bow out so the orchestrator
        # re-sends the adopt to the clone it actually checkpointed
        state.conn = state.slots[fresh_index]
        state.send(("stale", epoch_no))
        os._exit(0)
    # re-home the command channel to the fresh, uncontested slot: a
    # lurking clone of the other generation stays blocked on the old
    # one, which the orchestrator closes right after adoption (EOF
    # retires the lurker), so it can never steal normal traffic
    contested = state.slots[slot_index:fresh_index]
    state.conn = state.slots[fresh_index]
    for conn in contested:
        try:
            conn.close()
        except (OSError, ValueError):
            pass
    # hello proves which frozen state answered this slot
    state.send(
        (
            "hello",
            {
                "epoch": epoch_no,
                "clock": shard.kernel.clock.tick,
                "fingerprint": shard.fingerprint(),
            },
        )
    )
    state.start_heartbeats()


def _do_checkpoint(
    shard: _Shard, state: _WorkerState, slot_index: int, epoch_no: int
) -> None:
    """Fork a hot spare at this epoch boundary and marshal the payload.

    In the parent, returns after sending the checkpoint message; in
    the promoted child (possibly much later), returns after adoption
    so the serve loop continues from the checkpointed state.

    Make-before-break: the previous boundary's clone is retired only
    AFTER the replacement's payload is on the wire, so a ``kill -9``
    landing anywhere in this sequence always leaves one live spare
    matching a checkpoint the orchestrator either holds or is about
    to receive.  The brief two-generation overlap on the shared slot
    pipe is disambiguated at adoption time by the epoch handshake in
    :func:`_spare_wait`.
    """
    payload = {
        "epoch": epoch_no,
        "clock": shard.kernel.clock.tick,
        "fingerprint": shard.fingerprint(),
        "stores": shard.store_blobs(),
        "slot": slot_index,
    }
    predecessor = state.spare_pid
    state.stop_heartbeats()  # fork from a single-threaded process
    pid = os.fork()
    if pid == 0:
        _spare_wait(shard, state, slot_index, epoch_no)
        return  # adopted: serve on from the checkpoint boundary
    state.spare_pid = pid
    state.start_heartbeats()
    payload["spare_pid"] = pid
    state.send(("checkpoint", payload))
    if state.die_in_checkpoint:
        # chaos drill: the worst-case external kill placement — both
        # generations' spares are alive and share the slot pipe
        os._exit(99)
    if predecessor is not None:
        try:
            os.kill(predecessor, signal.SIGKILL)
            os.waitpid(predecessor, 0)
        except (ProcessLookupError, ChildProcessError, OSError):
            pass


def _serve(shard: _Shard, state: _WorkerState) -> None:
    """Answer orchestrator commands until finish or EOF."""
    while True:
        try:
            cmd = state.conn.recv()
        except EOFError:
            return  # orchestrator went away
        if cmd[0] == "epoch":
            _, epoch_no, until, inbound, completions, directives, ckpt_slot = cmd
            kill = corrupt = False
            for directive in directives:
                kind = directive["kind"]
                if kind == "kill":
                    kill = True
                elif kind == "corrupt":
                    corrupt = True
                elif kind == "slow":
                    time.sleep(directive["delay_seconds"])
                elif kind == "hang":
                    _chaos_hang(state, directive)
                elif kind == "ckpt_kill":
                    # latched: fires inside the next _do_checkpoint
                    state.die_in_checkpoint = True
            reply = shard.run_epoch(until, inbound, completions)
            if kill:
                # computed but never answered: to the orchestrator this
                # is indistinguishable from a segfault mid-epoch
                os._exit(99)
            if corrupt:
                state.send_bytes(b"ZSCHAOS not a pickle frame")
                continue
            state.send(("epoch", reply))
            if ckpt_slot is not None:
                _do_checkpoint(shard, state, ckpt_slot, epoch_no)
        elif cmd[0] == "finish":
            state.send(("results", shard.finish(cmd[1])))
            return
        else:  # pragma: no cover - protocol error
            raise LaunchError(f"unknown shard command {cmd[0]!r}")


def _worker_main(conn, build, to_close, slots, hb_interval) -> None:
    """Worker process entry: build the shard, serve barrier commands.

    ``to_close`` lists every inherited connection this worker must NOT
    hold — other shards' pipes and the orchestrator-side ends of its
    own.  Closing them is what makes EOF death-detection work: a pipe
    only reports EOF once *every* copy of the far end is gone.
    """
    for stale in to_close:
        try:
            stale.close()
        except (OSError, ValueError):
            pass
    state = _WorkerState(conn, slots, hb_interval)
    try:
        # heartbeat before building: shard construction can outlast the
        # hang grace on a loaded host, and silence would read as a hang
        state.start_heartbeats()
        shard = build()
        state.kernel = shard.kernel
        _serve(shard, state)
    except BaseException as exc:
        try:
            state.send(
                ("error", {"exc": repr(exc), "traceback": traceback.format_exc()})
            )
        except Exception:
            pass
        os._exit(1)


# ----------------------------------------------------------------------
# orchestrator side
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    try:
        with open(f"/proc/{pid}/stat", "rb") as fh:
            stat = fh.read()
        return stat.rsplit(b") ", 1)[1][:1] != b"Z"
    except (OSError, IndexError):
        return True


class _WorkerHandle:
    """One shard's live process: an mp worker or a promoted raw pid.

    Promoted spares are grandchildren (forked by the dead worker), so
    ``multiprocessing`` never tracked them and ``waitpid`` is not
    available — liveness and join fall back to signal-0 polling.
    """

    def __init__(self, proc=None, pid: Optional[int] = None):
        self._proc = proc
        self.pid = proc.pid if proc is not None else pid

    @property
    def exitcode(self):
        return self._proc.exitcode if self._proc is not None else None

    def is_alive(self) -> bool:
        if self._proc is not None:
            return self._proc.is_alive()
        return _pid_alive(self.pid)

    def _signal(self, sig: int) -> None:
        try:
            os.kill(self.pid, sig)
        except (ProcessLookupError, PermissionError):
            pass

    def terminate(self) -> None:
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.terminate()
        else:
            self._signal(signal.SIGTERM)

    def kill(self) -> None:
        if self._proc is not None:
            if self._proc.is_alive():
                self._proc.kill()
        else:
            self._signal(signal.SIGKILL)

    def join(self, timeout: float) -> None:
        if self._proc is not None:
            self._proc.join(timeout)
            return
        deadline = time.monotonic() + timeout
        while _pid_alive(self.pid) and time.monotonic() < deadline:
            time.sleep(0.01)


def _describe(cause: BaseException) -> str:
    """Human-form diagnosis: type plus message (many EOFErrors are bare)."""
    text = str(cause)
    return f"{type(cause).__name__}: {text}" if text else type(cause).__name__


class _WorkerLost(Exception):
    """Internal: one worker failed to answer; carries the diagnosis."""

    def __init__(self, shard: int, cause: BaseException):
        super().__init__(f"shard {shard}: {cause!r}")
        self.shard = shard
        self.cause = cause


class _RecoveryImpossible(Exception):
    """Internal: recovery preconditions failed; degrade immediately."""


class ShardedJobStep:
    """A sharded job: mirrors :class:`~repro.launch.job.JobStep`.

    ``run()`` drives the epoch barrier loop *and* finalizes the
    workers (remote monitors cannot be flushed lazily), so
    ``finalize()`` is a no-op kept for call-site compatibility.
    Results — reports, findings, advice, stores, the P2P matrix — are
    computed inside the workers and marshalled back.
    """

    def __init__(
        self,
        plans: list[ShardPlan],
        options: SrunOptions,
        assignments: list[TaskAssignment],
        epoch_ticks: int,
        *,
        has_monitors: bool,
        epoch_timeout: Optional[float],
        recovery: Optional[RecoveryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
    ):
        self.plans = plans
        self.options = options
        self.assignments = assignments
        self.epoch_ticks = epoch_ticks
        self.has_monitors = has_monitors
        self.epoch_timeout = epoch_timeout
        self.policy = recovery
        self.chaos = chaos
        # lazy: repro.collect pulls in repro.core, which imports launch
        from repro.collect.faults import DegradationLedger

        self.monitors: list = []  # parity with JobStep; always empty
        self.ticks_run = 0
        self.epochs_run = 0
        self.ledger = DegradationLedger()
        self._ctx = None
        self._procs: list = []
        self._conns: list = []
        self._builds: list[Callable[[], _Shard]] = []
        self._slot_parents: list[list] = []
        self._slot_children: list[list] = []
        self._slot_cursor: list[int] = []
        self._checkpoints: list[Optional[ShardCheckpoint]] = []
        self._replay: list[EpochReplayBuffer] = []
        self._deadlines: list = []
        self._last_hb: list[float] = []
        self._send_stamp: list[float] = []
        self._respawns_used: list[int] = []
        self._force_ckpt: list[bool] = []
        self._boundary = 0
        self._results: Optional[dict[int, RankResult]] = None
        self._node_mem: dict[str, float] = {}
        self._traffic: dict[tuple[int, int], int] = {}
        self._p2p_bytes = None
        self._p2p_messages = None
        self._shard_of_rank = {
            r: p.index for p in plans for r in p.ranks
        }
        self._hz = Clock().hz

    # -- lifecycle -------------------------------------------------------
    def _register_shard(self, build: Callable[[], _Shard], slots: int) -> None:
        """Allocate one shard's recovery state; pipes before processes."""
        # lazy import: repro.live reaches repro.collect -> repro.core
        from repro.live.watchdog import DeadlineEstimator

        policy = self.policy
        parents: list = []
        children: list = []
        for _ in range(slots):
            parent_end, child_end = self._ctx.Pipe(duplex=True)
            parents.append(parent_end)
            children.append(child_end)
        self._builds.append(build)
        self._slot_parents.append(parents)
        self._slot_children.append(children)
        self._slot_cursor.append(0)
        self._checkpoints.append(None)
        self._replay.append(
            EpochReplayBuffer(
                policy.max_replay_epochs if policy is not None else 1
            )
        )
        self._deadlines.append(
            DeadlineEstimator(
                factor=policy.straggler_factor if policy else 4.0,
                slack_seconds=(
                    policy.straggler_slack_seconds if policy else 0.25
                ),
            )
        )
        self._last_hb.append(time.monotonic())
        self._send_stamp.append(0.0)
        self._respawns_used.append(0)
        self._force_ckpt.append(False)
        self._procs.append(None)
        self._conns.append(None)

    def _iter_all_conns(self):
        for conn in self._conns:
            if conn is not None:
                yield conn
        for group in self._slot_parents:
            yield from group
        for group in self._slot_children:
            yield from group

    def _spawn_worker(self, shard: int) -> None:
        """Fork one worker (initial launch, or a pristine rebirth)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        keep = {id(child_conn)} | {
            id(c) for c in self._slot_children[shard]
        }
        to_close = [
            c
            for c in [*self._iter_all_conns(), parent_conn]
            if id(c) not in keep
        ]
        hb = (
            self.policy.heartbeat_interval
            if self.policy is not None
            else None
        )
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._builds[shard],
                to_close,
                self._slot_children[shard],
                hb,
            ),
            name=f"zerosum-shard-{shard}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._conns[shard] = parent_conn
        self._procs[shard] = _WorkerHandle(proc=proc)
        now = time.monotonic()
        self._last_hb[shard] = now
        self._send_stamp[shard] = now

    def close(self, join_timeout: float = 5.0) -> None:
        """Reap every worker and hot spare (idempotent).

        Closing the pipes first lets healthy workers and waiting
        spares exit on EOF; whatever survives is escalated
        terminate -> join -> kill -> join, so a wedged worker (e.g. one
        ignoring SIGTERM in uninterruptible sleep) can never outlive
        the step as a zombie child.
        """
        for conn in self._iter_all_conns():
            try:
                conn.close()
            except (OSError, ValueError):
                pass
        for ck in self._checkpoints:
            if ck is not None and ck.spare_pid is not None:
                try:
                    os.kill(ck.spare_pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
        procs = [p for p in self._procs if p is not None]
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(join_timeout)

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    # -- the wire --------------------------------------------------------
    def _ckpt_slot_for(self, shard: int, epoch_no: int) -> Optional[int]:
        policy = self.policy
        if policy is None or not policy.checkpoint_every:
            return None
        due = self._force_ckpt[shard] or (
            (epoch_no + 1) % policy.checkpoint_every == 0
        )
        if not due:
            return None
        cursor = self._slot_cursor[shard]
        if cursor >= len(self._slot_parents[shard]):
            return None  # every slot spent: no further spares possible
        self._force_ckpt[shard] = False
        return cursor

    def _send_epoch(
        self,
        shard: int,
        epoch_no: int,
        until: int,
        inbound: list,
        completions: list,
        *,
        record: bool = True,
        fresh: bool = True,
    ) -> None:
        """One epoch command; ``fresh`` commands draw chaos + checkpoints.

        Replayed commands are sent with ``fresh=False``: the chaos plan
        already consumed its events for those epochs (a recovered run
        must not re-fire a kill that already happened), and forking
        spares mid-replay would checkpoint half-restored state.
        """
        directives: list[dict] = []
        ckpt_slot: Optional[int] = None
        if fresh:
            if self.chaos is not None:
                directives = self.chaos.take(shard, epoch_no)
            ckpt_slot = self._ckpt_slot_for(shard, epoch_no)
        if record:
            self._replay[shard].record(epoch_no, until, inbound, completions)
        self._send_stamp[shard] = time.monotonic()
        try:
            self._conns[shard].send(
                ("epoch", epoch_no, until, inbound, completions, directives,
                 ckpt_slot)
            )
        except (OSError, ValueError):
            # the worker died between barriers; the wait below diagnoses
            # it (the command is already in the replay buffer)
            pass

    def _accept_checkpoint(self, shard: int, payload: dict) -> None:
        ck = ShardCheckpoint(
            shard=shard,
            epoch=payload["epoch"],
            clock=payload["clock"],
            fingerprint=payload["fingerprint"],
            store_blobs=payload["stores"],
            spare_pid=payload["spare_pid"],
            slot=payload["slot"],
        )
        self._checkpoints[shard] = ck
        # epochs at or before the checkpoint can never be replayed again
        self._replay[shard].trim_through(ck.epoch)

    def _await(
        self, shard: int, expect: str, *, observe_epoch: bool = False
    ):
        """Wait for an ``expect`` reply, folding in liveness traffic.

        Heartbeats and checkpoint payloads arrive interleaved with the
        real reply and are absorbed here.  Raises :class:`_WorkerLost`
        carrying the diagnosis — ``HangDetected`` for heartbeat
        silence or an alive-but-unresponsive process at the hard
        timeout, the underlying ``EOFError``/``OSError``/unpickling
        failure for death or a corrupted frame.
        """
        from repro.collect.faults import HangDetected

        conn = self._conns[shard]
        policy = self.policy
        started = self._send_stamp[shard] or time.monotonic()
        straggler_noted = False
        estimator = self._deadlines[shard]
        if policy is not None:
            slice_s = policy.heartbeat_interval
        else:
            slice_s = min(1.0, (self.epoch_timeout or 120.0) / 8)
        while True:
            try:
                ready = conn.poll(slice_s)
            except (OSError, ValueError) as exc:
                raise _WorkerLost(shard, exc)
            if ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError) as exc:
                    raise _WorkerLost(shard, exc)
                kind = msg[0]
                now = time.monotonic()
                if kind == "hb":
                    self._last_hb[shard] = msg[1]
                    continue
                if kind == "checkpoint":
                    self._accept_checkpoint(shard, msg[1])
                    self._last_hb[shard] = now
                    continue
                if kind == "hello":
                    continue  # stale adoption echo; harmless
                if kind == "error":
                    detail = msg[1]["exc"] + "\n" + msg[1]["traceback"]
                    raise _WorkerLost(shard, RuntimeError(detail))
                if kind == expect:
                    self._last_hb[shard] = now
                    if observe_epoch:
                        estimator.observe(now - started)
                    return msg[1]
                raise _WorkerLost(
                    shard,
                    LaunchError(
                        f"protocol violation: {kind!r} while awaiting "
                        f"{expect!r}"
                    ),
                )
            now = time.monotonic()
            elapsed = now - started
            proc = self._procs[shard]
            if not proc.is_alive():
                if conn.poll(0):
                    continue  # drain the dying worker's last messages
                raise _WorkerLost(
                    shard,
                    EOFError(
                        f"worker exited (exitcode {proc.exitcode})"
                    ),
                )
            if policy is not None:
                hb_age = now - self._last_hb[shard]
                if hb_age > policy.hang_grace_seconds:
                    raise _WorkerLost(
                        shard,
                        HangDetected(
                            f"no heartbeat for {hb_age:.2f}s (grace "
                            f"{policy.hang_grace_seconds:g}s) with the "
                            f"process still alive"
                        ),
                    )
                deadline = estimator.deadline()
                if (
                    observe_epoch
                    and deadline is not None
                    and elapsed > deadline
                    and not straggler_noted
                ):
                    straggler_noted = True
                    self.ledger.record_straggler(
                        f"shard-{shard}",
                        tick=float(self._boundary),
                        reason=(
                            f"epoch running {elapsed:.2f}s, past the "
                            f"adaptive deadline {deadline:.2f}s; "
                            f"heartbeats healthy — waiting"
                        ),
                    )
            if self.epoch_timeout is not None and elapsed > self.epoch_timeout:
                if proc.is_alive():
                    # alive but silent: a hang, NOT a crash — the old
                    # path misfiled this as permanent worker death
                    raise _WorkerLost(
                        shard,
                        HangDetected(
                            f"missed the epoch barrier after "
                            f"{self.epoch_timeout:g}s with the process "
                            f"still alive"
                        ),
                    )
                raise _WorkerLost(
                    shard,
                    TimeoutError(
                        f"missed the epoch barrier after "
                        f"{self.epoch_timeout:g}s"
                    ),
                )

    # -- failure handling ------------------------------------------------
    def _reap(self, shard: int) -> None:
        """Take the current worker process down hard and drop its pipe."""
        proc = self._procs[shard]
        if proc is not None and proc.is_alive():
            proc.terminate()
            proc.join(1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        conn = self._conns[shard]
        if conn is not None:
            try:
                conn.close()
            except (OSError, ValueError):
                pass

    def _record_loss(
        self, shard: int, cause: BaseException, note: str = ""
    ) -> None:
        """Contain one unrecoverable worker: ledger it, reap it."""
        from repro.collect.faults import (
            PERMANENT,
            HangDetected,
            classify_failure,
        )

        plan = self.plans[shard]
        verb = "hung" if isinstance(cause, HangDetected) else "crashed"
        failure_class = classify_failure(cause) or PERMANENT
        suffix = f" ({note})" if note else ""
        self.ledger.record_failure(
            f"shard-{shard}",
            tick=float(self._boundary),
            reason=(
                f"worker for nodes {list(plan.node_indices)} "
                f"(ranks {list(plan.ranks)}) {verb}: {_describe(cause)}{suffix}"
            ),
            failure_class=failure_class,
        )
        self._reap(shard)

    def _await_hello(
        self, shard: int, expected_epoch: int, contested, fresh_index: int
    ) -> dict:
        """A promoted spare's first words, within the hello timeout.

        Listens on the fresh command channel; a ``stale`` bounce means
        the wrong generation's clone consumed the adopt off the
        contested slot and bowed out, so the adopt is re-sent there —
        only the matching clone is left reading it.
        """
        conn = self._conns[shard]
        deadline = time.monotonic() + self.policy.hello_timeout_seconds
        while time.monotonic() < deadline:
            if not conn.poll(0.05):
                continue
            try:
                msg = conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError) as exc:
                raise _RecoveryImpossible(
                    f"spare died during adoption: {exc!r}"
                )
            if msg[0] == "hello":
                return msg[1]
            if msg[0] == "stale":
                try:
                    contested.send(("adopt", expected_epoch, fresh_index))
                except (OSError, ValueError) as exc:
                    raise _RecoveryImpossible(
                        f"slot pipe unusable: {exc!r}"
                    )
                continue
            if msg[0] == "hb":
                continue
        raise _RecoveryImpossible("spare did not answer adoption in time")

    def _respawn_and_replay(self, shard: int, pending: tuple):
        """One recovery attempt: new worker, verified replay, resend.

        ``pending`` is the in-flight command the lost worker never
        answered — ``("epoch", epoch_no)`` or ``("finish", end_tick)``.
        Returns that command's reply.  Raises :class:`_WorkerLost` if
        the replacement dies too (the budget loop may try again) or
        :class:`_RecoveryImpossible` when no restart substrate exists.
        """
        ck = self._checkpoints[shard]
        buffer = self._replay[shard]
        slots = self._slot_parents[shard]
        if (
            ck is not None
            and ck.spare_pid is not None
            and ck.slot + 1 < len(slots)
            and buffer.covers(ck.epoch)
            and _pid_alive(ck.spare_pid)
        ):
            contested = slots[ck.slot]
            fresh_index = ck.slot + 1
            try:
                # the epoch names which generation this adopt is for
                # (a mid-checkpoint death leaves two clones briefly
                # sharing the slot, and the wrong one must bow out);
                # the fresh index re-homes the command channel to an
                # uncontested slot so no lurking clone can steal
                # traffic meant for the promoted worker
                contested.send(("adopt", ck.epoch, fresh_index))
            except (OSError, ValueError) as exc:
                raise _RecoveryImpossible(f"slot pipe unusable: {exc!r}")
            self._conns[shard] = slots[fresh_index]
            self._procs[shard] = _WorkerHandle(pid=ck.spare_pid)
            now = time.monotonic()
            self._last_hb[shard] = now
            self._send_stamp[shard] = now
            hello = self._await_hello(shard, ck.epoch, contested, fresh_index)
            # both slots are spent either way: the spare is now the
            # worker, and closing the contested slot EOF-retires any
            # other-generation clone still blocked on it
            self._slot_cursor[shard] = ck.slot + 2
            self._checkpoints[shard] = None
            try:
                contested.close()
            except (OSError, ValueError):
                pass
            start_from = ck.epoch
            if (
                hello["epoch"] != ck.epoch
                or hello["fingerprint"] != ck.fingerprint
            ):
                raise _RecoveryImpossible(
                    "promoted spare failed state verification "
                    f"(epoch {hello['epoch']} vs {ck.epoch})"
                )
        elif buffer.covers(-1):
            # before the first checkpoint: a pristine worker re-forked
            # from the orchestrator's untouched closures, replayed from
            # epoch 0, reproduces the lost one exactly
            self._spawn_worker(shard)
            start_from = -1
        else:
            raise _RecoveryImpossible(
                "no live spare and the replay window no longer reaches "
                "the last checkpoint"
            )
        self._force_ckpt[shard] = True  # re-arm a spare at the next epoch

        pending_epoch = pending[1] if pending[0] == "epoch" else None
        reply_out = None
        for rec in buffer.records_after(start_from):
            resend = rec.epoch == pending_epoch and rec.reply_clock is None
            self._send_epoch(
                shard,
                rec.epoch,
                rec.until,
                rec.inbound,
                rec.completions,
                record=False,
                fresh=resend,  # the in-flight epoch draws chaos anew
            )
            reply = self._await(shard, "epoch")
            if rec.reply_clock is not None and reply["clock"] != rec.reply_clock:
                raise _RecoveryImpossible(
                    f"replay diverged at epoch {rec.epoch}: clock "
                    f"{reply['clock']} != {rec.reply_clock}"
                )
            if resend:
                reply_out = reply
        if pending[0] == "finish":
            self._conns[shard].send(pending)
            self._send_stamp[shard] = time.monotonic()
            reply_out = self._await(shard, "results")
        if reply_out is None:  # pragma: no cover - pending always replayed
            raise _RecoveryImpossible("pending command missing from replay")
        return reply_out

    def _recover(self, shard: int, lost: _WorkerLost, pending: tuple):
        """Heal one lost worker within the respawn budget, or degrade.

        Returns the pending command's reply on success; ``None`` when
        the loss was recorded and the shard is gone for good.
        """
        from repro.collect.faults import TRANSIENT

        policy = self.policy
        cause = lost.cause
        if policy is None or policy.max_respawns == 0:
            self._record_loss(shard, cause)
            return None
        while self._respawns_used[shard] < policy.max_respawns:
            attempt = self._respawns_used[shard]
            self._respawns_used[shard] += 1
            self.ledger.record_retry(
                f"shard-{shard}",
                tick=float(self._boundary),
                reason=f"respawn attempt {attempt + 1} after: {_describe(cause)}",
                failure_class=TRANSIENT,
            )
            self._reap(shard)
            time.sleep(policy.backoff_seconds * (2 ** attempt))
            try:
                reply = self._respawn_and_replay(shard, pending)
            except _WorkerLost as again:
                cause = again.cause  # replacement died too; maybe retry
                continue
            except _RecoveryImpossible as why:
                self._record_loss(shard, cause, note=str(why))
                return None
            self.ledger.record_respawn(
                f"shard-{shard}",
                tick=float(self._boundary),
                reason=(
                    f"worker respawned from checkpoint and replayed "
                    f"(attempt {attempt + 1}) after: {_describe(cause)}"
                ),
            )
            return reply
        self._record_loss(
            shard,
            cause,
            note=f"respawn budget exhausted ({policy.max_respawns})",
        )
        return None

    # -- the epoch barrier loop ------------------------------------------
    def run(self, max_ticks: int = 10_000_000, raise_on_stall: bool = True) -> int:
        """Drive all shards to completion; returns elapsed ticks."""
        if self._results is not None:
            return self.ticks_run
        L = self.epoch_ticks
        n = len(self.plans)
        active = [i for i in range(n)]
        lost: set[int] = set()
        clocks = [0] * n
        inbound: dict[int, list[RemoteEnvelope]] = {i: [] for i in range(n)}
        completions: dict[int, list[dict]] = {i: [] for i in range(n)}
        colls: dict[tuple[str, int], dict] = {}
        world = self.options.ntasks
        boundary = 0
        epoch_no = -1
        aborted = False

        while active and boundary < max_ticks:
            boundary = min(boundary + L, max_ticks)
            epoch_no += 1
            self._boundary = boundary
            for shard in active:
                self._send_epoch(
                    shard, epoch_no, boundary, inbound[shard],
                    completions[shard],
                )
                inbound[shard] = []
                completions[shard] = []
            replies: dict[int, dict] = {}
            for shard in list(active):
                try:
                    reply = self._await(shard, "epoch", observe_epoch=True)
                except _WorkerLost as lost_exc:
                    reply = self._recover(
                        shard, lost_exc, ("epoch", epoch_no)
                    )
                if reply is None:
                    active.remove(shard)
                    lost.add(shard)
                    aborted = True
                    continue
                self._replay[shard].note_clock(epoch_no, reply["clock"])
                replies[shard] = reply
                clocks[shard] = reply["clock"]
            if aborted:
                break

            # route cross-shard messages in serial injection order
            envelopes: list[RemoteEnvelope] = []
            for reply in replies.values():
                envelopes.extend(reply["outbox"])
            envelopes.sort(key=RemoteEnvelope.sort_key)
            routed = 0
            for env in envelopes:
                dst = self._shard_of_rank.get(env.dst_rank)
                if dst is not None and dst not in lost:
                    inbound[dst].append(env)
                    routed += 1

            # merge collective contributions; complete full rendezvous
            completed = 0
            for shard, reply in replies.items():
                for c in reply["contributions"]:
                    key = (c["kind"], c["seq"])
                    g = colls.setdefault(key, {"joined": 0, "data": {}})
                    g["joined"] += c["joined"]
                    g["data"].update(c["data"])
            for key in sorted(colls):
                g = colls[key]
                if g["joined"] >= world and not g.get("done"):
                    g["done"] = True
                    completed += 1
                    for shard in active:
                        completions[shard].append(
                            {"kind": key[0], "seq": key[1], "data": g["data"]}
                        )

            for shard in list(active):
                if replies[shard]["done"]:
                    active.remove(shard)

            if (
                active
                and routed == 0
                and completed == 0
                and not any(inbound[s] for s in active)
                and all(replies[s]["stalled"] for s in active)
            ):
                if raise_on_stall:
                    self.close()
                    raise DeadlockError(
                        f"sharded simulation stalled at tick {boundary}; "
                        f"stalled shards: {sorted(active)}"
                    )
                break

        self.epochs_run = epoch_no + 1
        end_tick = max(clocks) if clocks else 0
        self.ticks_run = end_tick
        self._collect(end_tick, lost)
        return self.ticks_run

    def _collect(self, end_tick: int, lost: set[int]) -> None:
        results: dict[int, RankResult] = {}
        for shard in range(len(self.plans)):
            if shard in lost:
                continue
            pending = ("finish", end_tick)
            try:
                self._conns[shard].send(pending)
                self._send_stamp[shard] = time.monotonic()
                reply = self._await(shard, "results")
            except (OSError, ValueError) as exc:
                reply = self._recover(shard, _WorkerLost(shard, exc), pending)
            except _WorkerLost as lost_exc:
                reply = self._recover(shard, lost_exc, pending)
            if reply is None:
                continue
            results.update(reply["ranks"])
            self._node_mem.update(reply["node_mem"])
            for key, nbytes in reply["traffic"].items():
                self._traffic[key] = self._traffic.get(key, 0) + nbytes
            if reply["p2p_bytes"] is not None:
                if self._p2p_bytes is None:
                    self._p2p_bytes = reply["p2p_bytes"]
                    self._p2p_messages = reply["p2p_messages"]
                else:
                    self._p2p_bytes += reply["p2p_bytes"]
                    self._p2p_messages += reply["p2p_messages"]
        self._results = results
        self.close()

    def finalize(self) -> None:
        """No-op: workers finalize their monitors inside ``run()``."""

    # -- result accessors (JobStep parity) -------------------------------
    @property
    def degradations(self) -> list:
        """Worker-loss events recorded during the run."""
        return list(self.ledger.events)

    def checkpoint_store(self, rank: int):
        """The last checkpointed SampleStore of one rank.

        The recovery artifact of last resort: when a shard's respawn
        budget is exhausted its final results are gone, but the ranks'
        samples up to the last accepted checkpoint survive here.
        """
        from repro.collect.journal import decode_store_snapshot

        shard = self._shard_of_rank.get(rank)
        if shard is None:
            raise LaunchError(f"rank {rank} does not exist")
        ck = self._checkpoints[shard]
        if ck is None or rank not in ck.store_blobs:
            raise LaunchError(
                f"no checkpointed store for rank {rank} (no checkpoint "
                "accepted, or its spare was already promoted)"
            )
        return decode_store_snapshot(ck.store_blobs[rank])

    def _result(self, rank: int) -> RankResult:
        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        result = self._results.get(rank)
        if result is None:
            raise LaunchError(
                f"no results for rank {rank} (its shard was lost or the "
                "rank does not exist)"
            )
        return result

    def monitor(self, rank: int = 0):
        """Unavailable on sharded jobs: monitors live in the workers."""
        raise LaunchError(
            "sharded jobs marshal results instead of live monitors; use "
            "report()/findings()/advice()/store() or cluster_view()"
        )

    def store(self, rank: int = 0):
        """The marshalled SampleStore of one rank."""
        result = self._require_monitored(rank)
        return result.store

    def _require_monitored(self, rank: int) -> RankResult:
        result = self._result(rank)
        if result.report is None:
            raise LaunchError("job was launched without monitors")
        return result

    def report(self, rank: int = 0):
        """Utilization report for one rank (Listing 2 layout)."""
        return self._require_monitored(rank).report

    def findings(self, rank: int = 0):
        """Contention/misconfiguration findings for one rank."""
        return self._require_monitored(rank).findings

    def advice(self, rank: int = 0):
        """Launch-configuration advice derived from one rank's run."""
        return self._require_monitored(rank).advice

    def heartbeats(self, rank: int = 0) -> list:
        """Heartbeat lines emitted by one rank's monitor."""
        return self._require_monitored(rank).heartbeats

    def comm_matrix(self):
        """The merged point-to-point bytes matrix (Figure 5 input)."""
        from repro.core.heatmap import CommMatrix
        from repro.errors import MonitorError

        if self._p2p_bytes is None:
            raise MonitorError("no monitor carries MPI point-to-point data")
        out = CommMatrix.zeros(self._p2p_bytes.shape[0])
        out.bytes += self._p2p_bytes
        out.messages += self._p2p_messages
        return out

    def cluster_view(self):
        """The allocation-wide view, merged across shards."""
        from repro.analysis.cluster_view import assemble_cluster_view

        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        summaries = [
            r.summary for r in self._results.values() if r.summary is not None
        ]
        return assemble_cluster_view(summaries, dict(self._node_mem))

    @property
    def rank_results(self) -> dict[int, RankResult]:
        if self._results is None:
            raise LaunchError("sharded job has not run yet")
        return dict(self._results)

    @property
    def traffic(self) -> dict[tuple[int, int], int]:
        """Accepted bytes per (src_node, dst_node), merged across shards."""
        return dict(self._traffic)

    @property
    def duration_seconds(self) -> float:
        return self.ticks_run / self._hz


def _fabric_spec(fabric: Optional[Fabric]) -> dict:
    f = fabric or Fabric()
    if f.jitter > 0:
        raise LaunchError(
            "sharded execution requires a jitter-free fabric (jitter "
            "draws are ordered by the global send sequence)"
        )
    if int(f.remote_latency) < 1:
        raise LaunchError(
            "sharded execution needs remote_latency >= 1 tick of lookahead"
        )
    return {
        "local_latency": f.local_latency,
        "remote_latency": f.remote_latency,
        "local_bandwidth": f.local_bandwidth,
        "remote_bandwidth": f.remote_bandwidth,
        "jitter": f.jitter,
        "seed": f.seed,
    }


def launch_sharded(
    machines: list[Machine],
    options: SrunOptions,
    app: AppFactory,
    *,
    workers: int,
    use_mpi: bool = True,
    helper_thread: bool = True,
    monitor_factory: Optional[Callable] = None,
    fabric: Optional[Fabric] = None,
    timeslice: int = 3,
    smt_efficiency: float = 1.0,
    epoch_ticks: Optional[int] = None,
    epoch_timeout: Optional[float] = 120.0,
    recovery: Optional[RecoveryPolicy] = _DEFAULT_RECOVERY,
    chaos: Optional[ChaosPlan] = None,
) -> ShardedJobStep:
    """Build the sharded world for one job step (does not run it).

    Workers are forked immediately so they inherit ``machines``, the
    app factory, and the monitor factory without pickling; the epoch
    loop starts on :meth:`ShardedJobStep.run`.

    ``recovery`` (on by default) makes the step self-healing — see the
    module docstring; pass ``None`` for the bare degrade-on-loss
    behaviour.  ``chaos`` injects deterministic worker faults for
    drills and tests (:mod:`repro.launch.chaos`).
    """
    from repro.launch.slurm import assign_tasks

    if "fork" not in multiprocessing.get_all_start_methods():
        raise LaunchError(
            "sharded execution needs the fork start method (POSIX only)"
        )
    # warm the marshalling imports before forking: children inherit the
    # loaded modules instead of each paying the import chain at finish
    import repro.analysis.cluster_view  # noqa: F401
    import repro.collect.journal  # noqa: F401
    import repro.core.advisor  # noqa: F401
    import repro.core.contention  # noqa: F401
    import repro.core.reports  # noqa: F401
    spec = _fabric_spec(fabric)
    lookahead = int(spec["remote_latency"])
    epoch = min(epoch_ticks or lookahead, lookahead)
    if epoch < 1:
        raise LaunchError("epoch_ticks must be >= 1")

    assignments = assign_tasks(machines, options)
    plans = plan_shards(assignments, len(machines), workers)
    if len(plans) < 2:
        raise LaunchError(
            "sharded execution needs >= 2 node groups; use the serial "
            "launcher for single-node jobs"
        )

    step = ShardedJobStep(
        plans,
        options,
        assignments,
        epoch,
        has_monitors=monitor_factory is not None,
        epoch_timeout=epoch_timeout,
        recovery=recovery,
        chaos=chaos,
    )
    step._ctx = multiprocessing.get_context("fork")
    # two slot pipes per possible promotion (the contested slot the
    # spare waits on plus the fresh slot the command channel migrates
    # to at adoption), plus one for the spare re-armed after the last
    # promotion; created BEFORE any worker forks so every worker
    # inherits the whole pool without fd passing
    slots = (
        2 * recovery.max_respawns + 1
        if recovery is not None and recovery.checkpoint_every
        else 0
    )
    for plan in plans:

        def build(plan=plan) -> _Shard:
            return _Shard(
                plan,
                machines,
                assignments,
                options,
                app,
                use_mpi=use_mpi,
                helper_thread=helper_thread,
                monitor_factory=monitor_factory,
                fabric_spec=spec,
                timeslice=timeslice,
                smt_efficiency=smt_efficiency,
            )

        step._register_shard(build, slots)
    for shard in range(len(plans)):
        step._spawn_worker(shard)
    return step
