"""Slurm-like resource assignment: ranks → cpusets and GPUs.

Implements block distribution over cores in OS order, skipping cores
the machine reserves for system processes (Frontier's low-noise mode
reserves the first core of each L3 region, which is why the default
8-rank launch in §4 lands rank 0 on core **1**, not core 0).

``--threads-per-core=1`` exposes only the first SMT thread of each
allocated core; 2 exposes both (the second HWT of core *c* on Frontier
is ``c + 64``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LaunchError
from repro.launch.options import SrunOptions
from repro.topology.cpuset import CpuSet
from repro.topology.distance import closest_gpu
from repro.topology.objects import Machine

__all__ = ["TaskAssignment", "assign_tasks"]


@dataclass(frozen=True)
class TaskAssignment:
    """Resources granted to one MPI rank."""

    rank: int
    node_index: int
    cpuset: CpuSet
    gpu_physical: tuple[int, ...] = ()


def _usable_cores(machine: Machine) -> list:
    """Allocatable cores in OS order (reserved system cores skipped)."""
    reserved = machine.reserved_cpus
    cores = []
    for core in machine.cores():
        if core.cpuset().overlaps(reserved):
            continue
        cores.append(core)
    return cores


def _core_pus(core, threads_per_core: int) -> CpuSet:
    pus = sorted(core.cpuset())
    return CpuSet(pus[:threads_per_core])


def assign_tasks(
    machines: list[Machine], options: SrunOptions
) -> list[TaskAssignment]:
    """Block-distribute ``ntasks`` over the given nodes."""
    if not machines:
        raise LaunchError("no nodes to launch on")
    assignments: list[TaskAssignment] = []
    rank = 0
    node_cores = [_usable_cores(m) for m in machines]
    cursors = [0] * len(machines)
    node_gpu_used: list[set[int]] = [set() for _ in machines]

    for node_index, machine in enumerate(machines):
        cores = node_cores[node_index]
        while rank < options.ntasks:
            start = cursors[node_index]
            end = start + options.cpus_per_task
            if end > len(cores):
                break  # node full; spill to the next node
            chosen = cores[start:end]
            cursors[node_index] = end
            cpuset = CpuSet()
            for core in chosen:
                cpuset = cpuset | _core_pus(core, options.threads_per_core)
            gpus: tuple[int, ...] = ()
            if options.gpus_per_task > 0:
                if not machine.gpus:
                    raise LaunchError(
                        f"node {machine.name} has no GPUs but "
                        f"--gpus-per-task={options.gpus_per_task}"
                    )
                picked = []
                for _ in range(options.gpus_per_task):
                    if len(node_gpu_used[node_index]) >= len(machine.gpus):
                        raise LaunchError(
                            f"not enough GPUs on {machine.name} for "
                            f"{options.ntasks} tasks x {options.gpus_per_task}"
                        )
                    if options.gpu_bind == "closest":
                        gpu = closest_gpu(
                            machine, cpuset, exclude=node_gpu_used[node_index]
                        )
                    else:
                        free = [
                            g
                            for g in machine.gpus
                            if g.physical_index not in node_gpu_used[node_index]
                        ]
                        gpu = free[0]
                    node_gpu_used[node_index].add(gpu.physical_index)
                    picked.append(gpu.physical_index)
                gpus = tuple(picked)
            assignments.append(
                TaskAssignment(
                    rank=rank, node_index=node_index, cpuset=cpuset, gpu_physical=gpus
                )
            )
            rank += 1
        if rank >= options.ntasks:
            break

    if rank < options.ntasks:
        total_cores = sum(len(c) for c in node_cores)
        raise LaunchError(
            f"cannot place {options.ntasks} tasks x {options.cpus_per_task} "
            f"cores on {len(machines)} node(s) with {total_cores} usable cores"
        )
    return assignments
