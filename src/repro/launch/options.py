"""``srun``-style job step options.

Models the subset of Slurm launch controls the paper's evaluation
exercises:

* ``-n`` / ``ntasks`` — number of MPI ranks;
* ``-c`` / ``cpus_per_task`` — CPUs allocated per rank (the difference
  between Table 1 and Table 2);
* ``--gpus-per-task`` and ``--gpu-bind=closest`` — GPU count and
  locality binding (Listing 2);
* ``--threads-per-core`` — SMT exposure (the Figure 8 overhead study
  uses 1 and 2);
* environment forwarding (``OMP_*`` variables, Table 3).
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field

from repro.errors import LaunchError

__all__ = ["SrunOptions"]


@dataclass
class SrunOptions:
    """Parsed job-step launch options."""

    ntasks: int = 1
    cpus_per_task: int = 1
    gpus_per_task: int = 0
    gpu_bind: str = "none"  # "none" | "closest"
    threads_per_core: int = 1
    env: dict[str, str] = field(default_factory=dict)
    command: str = "a.out"

    def __post_init__(self) -> None:
        if self.ntasks < 1:
            raise LaunchError("ntasks must be >= 1")
        if self.cpus_per_task < 1:
            raise LaunchError("cpus_per_task must be >= 1")
        if self.gpus_per_task < 0:
            raise LaunchError("gpus_per_task must be >= 0")
        if self.gpu_bind not in ("none", "closest"):
            raise LaunchError(f"unsupported gpu_bind {self.gpu_bind!r}")
        if self.threads_per_core not in (1, 2, 4):
            raise LaunchError("threads_per_core must be 1, 2 or 4")

    @classmethod
    def parse(cls, command_line: str) -> "SrunOptions":
        """Parse an ``srun ...`` command line like the paper quotes.

        Supports ``VAR=value`` prefixes, ``-nN``/``-n N``, ``-cN``/``-c N``,
        ``--gpus-per-task=N``, ``--gpu-bind=closest``,
        ``--threads-per-core=N``; the first non-option token is the
        command (the ``zerosum-mpi`` wrapper is recognized and skipped
        by callers, not here).
        """
        tokens = shlex.split(command_line)
        env: dict[str, str] = {}
        # leading VAR=value assignments
        while tokens and re.match(r"^[A-Za-z_][A-Za-z0-9_]*=", tokens[0]):
            key, _, value = tokens.pop(0).partition("=")
            env[key] = value
        if tokens and tokens[0] == "srun":
            tokens.pop(0)
        kwargs: dict = {"env": env}
        rest: list[str] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if m := re.match(r"^-n(\d+)?$", tok):
                if m.group(1):
                    kwargs["ntasks"] = int(m.group(1))
                else:
                    i += 1
                    kwargs["ntasks"] = int(tokens[i])
            elif m := re.match(r"^-c(\d+)?$", tok):
                if m.group(1):
                    kwargs["cpus_per_task"] = int(m.group(1))
                else:
                    i += 1
                    kwargs["cpus_per_task"] = int(tokens[i])
            elif m := re.match(r"^--ntasks=(\d+)$", tok):
                kwargs["ntasks"] = int(m.group(1))
            elif m := re.match(r"^--cpus-per-task=(\d+)$", tok):
                kwargs["cpus_per_task"] = int(m.group(1))
            elif m := re.match(r"^--gpus-per-task=(\d+)$", tok):
                kwargs["gpus_per_task"] = int(m.group(1))
            elif m := re.match(r"^--gpu-bind=(\w+)$", tok):
                kwargs["gpu_bind"] = m.group(1)
            elif m := re.match(r"^--threads-per-core=(\d+)$", tok):
                kwargs["threads_per_core"] = int(m.group(1))
            elif tok.startswith("-"):
                raise LaunchError(f"unsupported srun option {tok!r}")
            else:
                rest.append(tok)
            i += 1
        if rest:
            kwargs["command"] = " ".join(rest)
        return cls(**kwargs)
