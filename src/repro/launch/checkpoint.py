"""Checkpoint-restart policy and payloads for the sharded launcher.

A shard's kernel state is a web of live Python generators (the LWP
behaviours), which no serializer can capture.  The restart substrate is
therefore the **process image itself**: at every checkpoint barrier the
worker forks a frozen *hot spare* of itself that blocks on a
pre-created slot pipe, and promotion of that spare plus deterministic
replay of the epoch commands recorded since (see
``repro.mpi.fabric.EpochReplayBuffer``) reproduces the lost worker
bit-for-bit.  What travels over the pipe as :class:`ShardCheckpoint`
is the part worth marshalling: a cheap kernel *fingerprint* used to
verify a promoted spare really is the state it claims to be, and the
per-rank SampleStores (ZSJ2-encoded via the journal codec) so that a
run whose respawn budget is exhausted still reports every sample up to
the last checkpoint instead of losing the ranks outright.

:class:`RecoveryPolicy` is the single knob surface: checkpoint
cadence, heartbeat/hang thresholds, straggler deadline shape, respawn
budget and backoff.  The defaults favour production-shaped runs;
tests pass a compressed policy so fault drills finish in
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LaunchError

__all__ = ["RecoveryPolicy", "ShardCheckpoint"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Self-healing knobs for :func:`repro.launch.sharded.launch_sharded`.

    ``max_respawns`` bounds recovery attempts *per shard*; when the
    budget is exhausted (or a checkpoint/replay precondition fails)
    the orchestrator falls back to the pre-existing degrade-and-
    continue path, so recovery can only ever add resilience, never a
    hang.  ``checkpoint_every`` also sizes the pre-forked slot-pipe
    pool, so it must be chosen before workers start.
    """

    #: fork a hot spare + marshal a checkpoint every K epochs (0 = off)
    checkpoint_every: int = 16
    #: recovery attempts per shard before degrading
    max_respawns: int = 2
    #: sleep between respawn attempts (doubles each retry)
    backoff_seconds: float = 0.05
    #: worker heartbeat cadence, wall seconds
    heartbeat_interval: float = 0.25
    #: heartbeat silence that flips straggler -> hung
    hang_grace_seconds: float = 5.0
    #: straggler deadline = EWMA(epoch wall time) * factor + slack
    straggler_factor: float = 4.0
    straggler_slack_seconds: float = 0.25
    #: wait for a promoted spare's hello before giving up on it
    hello_timeout_seconds: float = 10.0
    #: replay-buffer bound, in epochs (must cover a checkpoint gap)
    max_replay_epochs: int = 64

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise LaunchError("checkpoint_every must be >= 0")
        if self.max_respawns < 0:
            raise LaunchError("max_respawns must be >= 0")
        if self.heartbeat_interval <= 0:
            raise LaunchError("heartbeat_interval must be > 0")
        if self.hang_grace_seconds <= 0:
            raise LaunchError("hang_grace_seconds must be > 0")
        if self.checkpoint_every and (
            self.max_replay_epochs < 2 * self.checkpoint_every
        ):
            raise LaunchError(
                "max_replay_epochs must be >= 2 * checkpoint_every, or a "
                "restart could need epochs the buffer already evicted"
            )


@dataclass
class ShardCheckpoint:
    """One accepted epoch-boundary checkpoint of one shard.

    ``fingerprint`` is a crc32 digest over the shard kernel's
    scheduler-visible LWP state; a promoted spare must echo it in its
    hello before the orchestrator trusts the slot.  ``store_blobs``
    maps each of the shard's world ranks to its ZSJ2-encoded
    SampleStore (see ``repro.collect.journal.encode_store_snapshot``),
    decoded lazily — most checkpoints are superseded unread.
    """

    shard: int
    epoch: int
    clock: int
    fingerprint: int
    store_blobs: dict[int, bytes] = field(default_factory=dict)
    #: pid of the hot spare frozen at this boundary (None once spent)
    spare_pid: Optional[int] = None
    #: index of the slot pipe the spare is blocked on
    slot: Optional[int] = None

    def stores(self) -> dict:
        """Decode the per-rank SampleStores (exhaustion reporting)."""
        from repro.collect.journal import decode_store_snapshot

        return {
            rank: decode_store_snapshot(blob)
            for rank, blob in self.store_blobs.items()
        }
