"""Job launcher (srun substitute): options, assignment, orchestration."""

from repro.launch.chaos import ChaosEvent, ChaosPlan, parse_chaos_spec
from repro.launch.checkpoint import RecoveryPolicy, ShardCheckpoint
from repro.launch.job import AppFactory, JobStep, RankContext, launch_job
from repro.launch.options import SrunOptions
from repro.launch.sharded import (
    RankResult,
    ShardedJobStep,
    ShardPlan,
    launch_sharded,
    plan_shards,
)
from repro.launch.slurm import TaskAssignment, assign_tasks

__all__ = [
    "SrunOptions",
    "TaskAssignment",
    "assign_tasks",
    "RankContext",
    "JobStep",
    "AppFactory",
    "launch_job",
    "ShardPlan",
    "RankResult",
    "ShardedJobStep",
    "plan_shards",
    "launch_sharded",
    "RecoveryPolicy",
    "ShardCheckpoint",
    "ChaosEvent",
    "ChaosPlan",
    "parse_chaos_spec",
]
